package planner

import (
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// planAlgs returns the set of algorithm families a plan uses.
func planAlgs(p *Plan) map[core.Algorithm]bool {
	out := map[core.Algorithm]bool{}
	for _, b := range p.Blocks {
		out[b.Alg] = true
	}
	return out
}

// TestHeuristicBoundaries pins the §8 regime boundaries on the Fig. 7
// Erdős–Rényi grid: sparse mask → Inner, sparse inputs → Heap/HeapDot,
// comparable densities → MSA/Hash.
func TestHeuristicBoundaries(t *testing.T) {
	const n = 1 << 12
	mk := func(deg float64, seed uint64) *matrix.CSR[float64] {
		return grgen.ErdosRenyi(n, deg, seed)
	}
	cases := []struct {
		name         string
		maskDeg, deg float64
		want         map[core.Algorithm]bool
	}{
		{"sparseMask", 1, 64, map[core.Algorithm]bool{core.Inner: true}},
		{"sparseInputs", 256, 1, map[core.Algorithm]bool{core.Heap: true, core.HeapDot: true}},
		{"comparable", 16, 16, map[core.Algorithm]bool{core.MSA: true, core.Hash: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := mk(tc.deg, 1)
			b := mk(tc.deg, 2)
			mask := mk(tc.maskDeg, 3).Pattern()
			p := Analyze(mask, a.Pattern(), b.Pattern(), core.Options{})
			for alg := range planAlgs(p) {
				if !tc.want[alg] {
					t.Fatalf("%s regime chose %s:\n%s", tc.name, alg, p.Explain())
				}
			}
			if p.Phase != core.OnePhase {
				t.Fatalf("%s: normal mask must plan one-phase, got %s", tc.name, p.Phase)
			}
		})
	}
}

// TestPlanProperty is the safety property sweep: over a grid of random
// instances and both mask modes, every emitted plan tiles the row space
// exactly, never assigns MCA (or the pull kernel) under a complemented
// mask, and executes without error.
func TestPlanProperty(t *testing.T) {
	graphs := []*matrix.CSR[float64]{
		grgen.RMAT(9, 8, 1),
		grgen.RMAT(10, 4, 2),
		grgen.ErdosRenyi(700, 3, 3),
		grgen.BarabasiAlbert(900, 3, 4),
		grgen.Grid2D(30, 30),
		matrix.NewEmptyCSR[float64](0, 0),
		matrix.NewEmptyCSR[float64](5, 5),
	}
	sr := semiring.Arithmetic()
	for gi, g := range graphs {
		for _, complement := range []bool{false, true} {
			opt := core.Options{Complement: complement}
			p := Analyze(g.Pattern(), g.Pattern(), g.Pattern(), opt)
			next := Index(0)
			for _, b := range p.Blocks {
				if b.Lo != next || b.Hi < b.Lo {
					t.Fatalf("graph %d: blocks do not tile: [%d,%d) after %d", gi, b.Lo, b.Hi, next)
				}
				next = b.Hi
				if complement && (b.Alg == core.MCA || b.Alg == core.Inner) {
					t.Fatalf("graph %d: %s planned under complement", gi, b.Alg)
				}
			}
			if next != g.NRows {
				t.Fatalf("graph %d: blocks cover [0,%d), want [0,%d)", gi, next, g.NRows)
			}
			if _, err := Execute(p, g.Pattern(), g, g, sr, opt, nil); err != nil {
				t.Fatalf("graph %d complement=%v: execute: %v", gi, complement, err)
			}
		}
	}
}

// TestAutoMatchesEveryFixedVariant: the planned product is bit-identical to
// every fixed variant on random R-MAT inputs, in both mask modes.
func TestAutoMatchesEveryFixedVariant(t *testing.T) {
	sr := semiring.PlusPairF()
	eq := func(x, y float64) bool { return x == y }
	for seed := uint64(1); seed <= 3; seed++ {
		g := grgen.RMAT(9, 8, seed)
		a := grgen.RMAT(9, 4, seed+10)
		mask := grgen.ErdosRenyi(g.NRows, 4, seed+20).Pattern()
		for _, complement := range []bool{false, true} {
			opt := core.Options{Complement: complement}
			p := Analyze(mask, a.Pattern(), g.Pattern(), opt)
			got, err := Execute(p, mask, a, g, sr, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range core.AllVariants() {
				if complement && !v.SupportsComplement() {
					continue
				}
				want, err := core.MaskedSpGEMM(v, mask, a, g, sr, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !matrix.Equal(got, want, eq) {
					t.Fatalf("seed %d complement=%v: plan disagrees with %s\n%s",
						seed, complement, v.Name(), p.Explain())
				}
			}
		}
	}
}

// TestComplementMemoryTightPlansTwoPhase: a complemented mask over
// flop-heavy operands makes the 1P allocation bound balloon past the
// operand footprint; the §6 rule must switch to two-phase.
func TestComplementMemoryTightPlansTwoPhase(t *testing.T) {
	g := grgen.ErdosRenyi(1<<11, 48, 7)
	mask := grgen.ErdosRenyi(1<<11, 1, 8).Pattern()
	p := Analyze(mask, g.Pattern(), g.Pattern(), core.Options{Complement: true})
	if p.Phase != core.TwoPhase {
		t.Fatalf("memory-tight complement plan must be 2P:\n%s", p.Explain())
	}
	if p.Stats.Bound1P <= p.Stats.NNZM+p.Stats.NNZA+p.Stats.NNZB {
		t.Fatalf("test premise broken: bound %d not memory-tight", p.Stats.Bound1P)
	}
	// The same operands with a normal mask stay 1P (bound = nnz(M)).
	if p2 := Analyze(mask, g.Pattern(), g.Pattern(), core.Options{}); p2.Phase != core.OnePhase {
		t.Fatalf("normal mask must plan 1P, got %s", p2.Phase)
	}
}

// TestMixedPlanOnSkewedProfile: a row space whose halves sit in opposite
// Fig. 7 corners gets a mixed plan, and the mixed execution is
// bit-identical to a fixed variant.
func TestMixedPlanOnSkewedProfile(t *testing.T) {
	const n = 4096
	const half = n / 2
	// B: rows 0..63 dense (256 entries), the rest one entry each.
	bcoo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i < 64; i++ {
		for c := Index(0); c < 256; c++ {
			bcoo.Row = append(bcoo.Row, i)
			bcoo.Col = append(bcoo.Col, (c*16+i)%n)
			bcoo.Val = append(bcoo.Val, 1)
		}
	}
	for i := Index(64); i < n; i++ {
		bcoo.Row = append(bcoo.Row, i)
		bcoo.Col = append(bcoo.Col, i)
		bcoo.Val = append(bcoo.Val, 1)
	}
	b := matrix.NewCSRFromCOO(bcoo, nil)
	// A: top half rows reference one sparse B row (≈1 flop); bottom half
	// rows reference 32 dense B rows (≈8192 flops).
	acoo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i < half; i++ {
		acoo.Row = append(acoo.Row, i)
		acoo.Col = append(acoo.Col, 64+(i%(n-64)))
		acoo.Val = append(acoo.Val, 1)
	}
	for i := Index(half); i < n; i++ {
		for k := Index(0); k < 32; k++ {
			acoo.Row = append(acoo.Row, i)
			acoo.Col = append(acoo.Col, (k+i)%64)
			acoo.Val = append(acoo.Val, 1)
		}
	}
	a := matrix.NewCSRFromCOO(acoo, nil)
	// Mask: top half rows dense (256 entries ≫ flops), bottom half sparse
	// (2 entries ≪ flops).
	mcoo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i < half; i++ {
		for c := Index(0); c < 256; c++ {
			mcoo.Row = append(mcoo.Row, i)
			mcoo.Col = append(mcoo.Col, (c*7+i)%n)
			mcoo.Val = append(mcoo.Val, 1)
		}
	}
	for i := Index(half); i < n; i++ {
		mcoo.Row = append(mcoo.Row, i, i)
		mcoo.Col = append(mcoo.Col, i%64, (i+13)%64)
		mcoo.Val = append(mcoo.Val, 1, 1)
	}
	mask := matrix.NewCSRFromCOO(mcoo, nil).Pattern()

	p := Analyze(mask, a.Pattern(), b.Pattern(), core.Options{})
	if !p.Mixed() {
		t.Fatalf("skewed profile should produce a mixed plan:\n%s", p.Explain())
	}
	algs := planAlgs(p)
	if !algs[core.Heap] && !algs[core.HeapDot] {
		t.Fatalf("dense-mask half should run a heap variant:\n%s", p.Explain())
	}
	if !algs[core.Inner] {
		t.Fatalf("sparse-mask half should run Inner:\n%s", p.Explain())
	}
	sr := semiring.Arithmetic()
	var stats []core.BlockStat
	got, err := Execute(p, mask, a, b, sr, core.Options{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(p.Blocks) {
		t.Fatalf("got %d block stats for %d blocks", len(stats), len(p.Blocks))
	}
	var outSum int64
	for _, s := range stats {
		outSum += s.OutNNZ
	}
	if outSum != int64(got.NNZ()) {
		t.Fatalf("block stats out nnz %d != result nnz %d", outSum, got.NNZ())
	}
	want, err := core.MaskedSpGEMM(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, mask, a, b, sr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
		t.Fatal("mixed execution disagrees with MSA-1P")
	}
}

// TestCacheReusesPlans: repeated analysis of the same static operands hits
// the cache; a mask in a different size bucket or a different B identity
// re-analyzes.
func TestCacheReusesPlans(t *testing.T) {
	c := NewCache()
	g := grgen.RMAT(9, 8, 5)
	m1 := grgen.ErdosRenyi(g.NRows, 4, 6).Pattern()
	m2 := grgen.ErdosRenyi(g.NRows, 4, 7).Pattern()  // same density bucket
	m3 := grgen.ErdosRenyi(g.NRows, 64, 8).Pattern() // different bucket
	opt := core.Options{}
	p1 := c.Analyze(m1, g.Pattern(), g.Pattern(), opt)
	if p1.CacheHit {
		t.Fatal("first analysis cannot hit")
	}
	p2 := c.Analyze(m1, g.Pattern(), g.Pattern(), opt)
	if !p2.CacheHit {
		t.Fatal("identical call must hit")
	}
	if p3 := c.Analyze(m2, g.Pattern(), g.Pattern(), opt); !p3.CacheHit {
		t.Fatal("same-bucket mask sweep must hit")
	}
	if p4 := c.Analyze(m3, g.Pattern(), g.Pattern(), opt); p4.CacheHit {
		t.Fatal("different-bucket mask must re-analyze")
	}
	if p5 := c.Analyze(m1, g.Pattern(), g.Pattern(), core.Options{Complement: true}); p5.CacheHit {
		t.Fatal("complement mode must re-analyze")
	}
	g2 := grgen.RMAT(9, 8, 5) // identical content, different identity
	if p6 := c.Analyze(m1, g.Pattern(), g2.Pattern(), opt); p6.CacheHit {
		t.Fatal("different B identity must re-analyze")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 2/4", st.Hits, st.Misses)
	}
	c.Reset()
	// Reset drops entries but keeps the monotonic counters.
	if st2 := c.Stats(); st2.Entries != 0 || st2.Hits != st.Hits || st2.Misses != st.Misses {
		t.Fatalf("reset: entries=%d hits=%d misses=%d, want 0 entries and unchanged counters %d/%d",
			st2.Entries, st2.Hits, st2.Misses, st.Hits, st.Misses)
	}
	// A cached plan still executes correctly against the swept mask.
	p := c.Analyze(m2, g.Pattern(), g.Pattern(), opt)
	p = c.Analyze(m2, g.Pattern(), g.Pattern(), opt)
	sr := semiring.Arithmetic()
	got, err := Execute(p, m2, g, g, sr, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.MaskedSpGEMM(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, m2, g, g, sr, opt)
	if !matrix.Equal(got, want, func(x, y float64) bool { return x == y }) {
		t.Fatal("cached plan execution disagrees with MSA-1P")
	}
}

// TestExecuteRejectsModeMismatch: executing a plan under the opposite mask
// mode is an error, not a wrong answer.
func TestExecuteRejectsModeMismatch(t *testing.T) {
	g := grgen.RMAT(8, 4, 9)
	p := Analyze(g.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	if _, err := Execute(p, g.Pattern(), g, g, semiring.Arithmetic(), core.Options{Complement: true}, nil); err == nil {
		t.Fatal("complement mismatch must error")
	}
}

// TestUnsortedOperandsStayOnPush: kernels requiring sorted rows must not be
// planned when an operand's rows are unsorted.
func TestUnsortedOperandsStayOnPush(t *testing.T) {
	g := grgen.ErdosRenyi(512, 1, 11) // sparse inputs: heap territory if sorted
	mask := grgen.ErdosRenyi(512, 128, 12)
	// Scramble the mask's row order.
	un := mask.Clone()
	for i := Index(0); i < un.NRows; i++ {
		lo, hi := un.RowPtr[i], un.RowPtr[i+1]
		if hi-lo > 1 {
			un.Col[lo], un.Col[hi-1] = un.Col[hi-1], un.Col[lo]
		}
	}
	p := Analyze(un.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	for alg := range planAlgs(p) {
		if alg != core.MSA && alg != core.Hash {
			t.Fatalf("unsorted operands planned %s:\n%s", alg, p.Explain())
		}
	}
}

// TestCacheRevalidatesSortedness: a cached plan built from sorted operands
// must not run sorted-rows kernels on a later same-bucket unsorted mask.
func TestCacheRevalidatesSortedness(t *testing.T) {
	c := NewCache()
	// Sparse inputs + dense mask → heap-family plan (needs sorted rows).
	g := grgen.ErdosRenyi(2048, 1, 21)
	m1 := grgen.ErdosRenyi(2048, 128, 22)
	p1 := c.Analyze(m1.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	if !p1.NeedsSortedRows() {
		t.Fatalf("test premise broken: expected a sorted-rows plan\n%s", p1.Explain())
	}
	// Same size bucket, but with scrambled rows.
	m2 := m1.Clone()
	for i := Index(0); i < m2.NRows; i++ {
		lo, hi := m2.RowPtr[i], m2.RowPtr[i+1]
		if hi-lo > 1 {
			m2.Col[lo], m2.Col[hi-1] = m2.Col[hi-1], m2.Col[lo]
		}
	}
	p2 := c.Analyze(m2.Pattern(), g.Pattern(), g.Pattern(), core.Options{})
	if p2.CacheHit {
		t.Fatal("unsorted mask must not reuse a sorted-rows plan")
	}
	for alg := range planAlgs(p2) {
		if alg != core.MSA && alg != core.Hash {
			t.Fatalf("unsorted mask planned %s", alg)
		}
	}
	// The sorted mask still hits afterwards (revalidation passes).
	if p3 := c.Analyze(m1.Pattern(), g.Pattern(), g.Pattern(), core.Options{}); !p3.CacheHit {
		t.Fatal("sorted mask should revalidate and hit")
	}
}

// TestDegenerateZeroValueOperands: zero-value matrices (nil RowPtr) must
// not panic anywhere on the planned path.
func TestDegenerateZeroValueOperands(t *testing.T) {
	m := &matrix.Pattern{}
	z := &matrix.CSR[float64]{}
	p := NewCache().Analyze(m, z.Pattern(), z.Pattern(), core.Options{})
	var stats []core.BlockStat
	out, err := Execute(p, m, z, z, semiring.Arithmetic(), core.Options{}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 0 {
		t.Fatalf("empty operands produced %d entries", out.NNZ())
	}
}
