package planner

// Online prediction-error feedback. Every executed plan's measured kernel
// time (the drivers' summed per-block worker nanoseconds, core.BlockStat.
// ElapsedNs) is compared against the plan's PredictedNs and folded into an
// EWMA stored on the plan's cache entry. The first FeedbackWarmup executions
// freeze a baseline ratio — so the loop detects *drift* relative to the
// plan's own established accuracy and works identically whether the model's
// NsPerUnit was calibrated or is the dimensionless default — and a sustained
// departure (the EWMA outside FeedbackBand× the baseline for FeedbackTrigger
// consecutive executions, with a tighter re-entry band for hysteresis)
// invalidates the cache entry: the next call re-analyzes with current
// statistics. Mispredictions of that persistence mean the operands' real
// cost structure moved inside their cache bucket, which is exactly when the
// chosen variant may be stale too.

import "sync"

// Feedback-loop tuning. Exported so tests and docs state the contract; the
// values are deliberately conservative — re-planning costs an O(nnz(A))
// analysis, so only sustained multi-× drift triggers it.
const (
	// FeedbackAlpha is the EWMA smoothing factor of the actual/predicted
	// ratio series.
	FeedbackAlpha = 0.25
	// FeedbackWarmup is the number of executions that establish the
	// baseline ratio before drift detection engages.
	FeedbackWarmup = 3
	// FeedbackBand bounds accepted drift: an EWMA outside
	// [baseline/FeedbackBand, baseline×FeedbackBand] counts toward the
	// misprediction streak.
	FeedbackBand = 3.0
	// FeedbackReenterBand is the hysteresis band: the streak only resets
	// once the EWMA is back within [baseline/FeedbackReenterBand,
	// baseline×FeedbackReenterBand]. Between the two bands the streak
	// holds, so a ratio oscillating on the trigger boundary cannot
	// indefinitely dodge — or indefinitely re-arm — invalidation.
	FeedbackReenterBand = 1.5
	// FeedbackTrigger is the consecutive out-of-band execution count that
	// invalidates the cached plan.
	FeedbackTrigger = 4
)

// feedback is the prediction-error state of one cache entry, shared by
// every copy of the entry's plan. All fields are guarded by mu; the struct
// outlives cache eviction (a caller holding an evicted plan keeps recording
// into it harmlessly — invalidation of a no-longer-resident key is a no-op).
type feedback struct {
	mu          sync.Mutex
	key         cacheKey
	ewma        float64 // smoothed actual/predicted ratio
	baseline    float64 // EWMA frozen after FeedbackWarmup executions
	execs       int64   // executions recorded
	streak      int     // consecutive out-of-band executions
	invalidated bool
}

// FeedbackState is a snapshot of one plan's prediction-error feedback, as
// returned by Cache.Record and stamped into ExecStats.
type FeedbackState struct {
	// EWMA is the smoothed actual/predicted time ratio (0 until the first
	// recorded execution).
	EWMA float64
	// Baseline is the frozen warmup EWMA drift is measured against (0 while
	// still warming up).
	Baseline float64
	// Execs is the number of executions recorded against the entry.
	Execs int64
	// Streak is the current consecutive out-of-band execution count.
	Streak int
	// Invalidated reports that the entry was dropped by the feedback loop
	// (recording stops once set).
	Invalidated bool
}

func (fb *feedback) state() FeedbackState {
	return FeedbackState{EWMA: fb.ewma, Baseline: fb.baseline, Execs: fb.execs, Streak: fb.streak, Invalidated: fb.invalidated}
}

// ExecStats describes one observed execution of a plan, stamped by the
// masked session on the plan copy it returns (cached plans are shared and
// never mutated — see TestExplainExecStampImmutable).
type ExecStats struct {
	// ActualNs is the execution's summed per-block worker kernel time.
	ActualNs int64
	// BlockNs is the per-plan-block split of ActualNs, index-aligned with
	// Plan.Blocks.
	BlockNs []int64
	// Feedback is the entry's feedback state after recording this
	// execution.
	Feedback FeedbackState
}

// Feedback returns the current feedback state of the plan's cache entry
// (zero value when the plan never entered a cache).
func (p *Plan) Feedback() FeedbackState {
	if p.fb == nil {
		return FeedbackState{}
	}
	p.fb.mu.Lock()
	defer p.fb.mu.Unlock()
	return p.fb.state()
}

// WithExec returns a shallow copy of p stamped with the given execution
// observation (like the session's ops stamp, the copy keeps the cached plan
// immutable). The feedback state and predicted-vs-actual appear in the
// copy's Explain output.
func (p *Plan) WithExec(e ExecStats) *Plan {
	q := *p
	q.Exec = &e
	return &q
}

// Record folds one measured execution of p into its cache entry's feedback
// state: actualNs is the drivers' summed per-block kernel time. It returns
// the post-update state and whether this record invalidated the entry
// (sustained drift — the next Analyze of the product re-plans). Records
// against plans that never entered the cache, zero/negative measurements,
// or unpriced plans (PredictedNs 0) are ignored.
func (c *Cache) Record(p *Plan, actualNs int64) (FeedbackState, bool) {
	if p == nil || p.fb == nil || actualNs <= 0 || !(p.PredictedNs > 0) {
		return FeedbackState{}, false
	}
	ratio := float64(actualNs) / p.PredictedNs
	fb := p.fb
	fb.mu.Lock()
	if fb.invalidated {
		st := fb.state()
		fb.mu.Unlock()
		return st, false
	}
	c.records.Add(1)
	fb.execs++
	if fb.execs == 1 {
		fb.ewma = ratio
	} else {
		fb.ewma = FeedbackAlpha*ratio + (1-FeedbackAlpha)*fb.ewma
	}
	if fb.execs <= FeedbackWarmup {
		fb.baseline = fb.ewma
		st := fb.state()
		fb.mu.Unlock()
		return st, false
	}
	rel := fb.ewma / fb.baseline
	switch {
	case rel > FeedbackBand || rel < 1/FeedbackBand:
		fb.streak++
	case rel < FeedbackReenterBand && rel > 1/FeedbackReenterBand:
		fb.streak = 0
	}
	if fb.streak >= FeedbackTrigger {
		fb.invalidated = true
		st := fb.state()
		fb.mu.Unlock()
		c.invalidate(fb)
		c.replans.Add(1)
		return st, true
	}
	st := fb.state()
	fb.mu.Unlock()
	return st, false
}

// invalidate drops the cache entry fb belongs to, if it is still resident
// and still owned by fb (a concurrent re-analysis may have replaced the
// entry's feedback state, in which case the newer entry survives).
func (c *Cache) invalidate(fb *feedback) {
	sh := c.shard(fb.key)
	sh.mu.Lock()
	if el, ok := sh.plans[fb.key]; ok && el.Value.(*cacheEntry).plan.fb == fb {
		sh.lru.Remove(el)
		delete(sh.plans, fb.key)
	}
	sh.mu.Unlock()
}
