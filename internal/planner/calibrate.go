package planner

// Session-start micro-calibration. The §8 cost model's unit costs were
// hand-tuned once on one host; Calibrate refits them here and now by timing
// a fixed set of synthetic probes — one per kernel family the model prices:
//
//	msa-scatter   MSA-1P under a sparse and a dense random mask; the
//	              two-point fit separates the per-flop scatter cost (the
//	              model's 1.0 anchor and NsPerUnit) from the per-mask-entry
//	              gather cost (MaskUnit)
//	hash-probe    Hash-1P under the same two masks → HashUnit
//	heap-pop      Heap-1P under the same two masks → HeapUnit (per flop ×
//	              log2 merge width)
//	bitmap-probe  MCA-1P on the dense mask, bitmap vs CSR representation →
//	              BitmapProbeRatio
//	dense-run     MSA-1P on a contiguous-run mask, dense vs CSR
//	              representation → DenseUnit
//
// plus a parallel-dispatch probe fitting CostPerWorker (the serving
// arbiter's admission unit) from the measured fan-out overhead. Probes run
// single-threaded on deterministic generated operands (~10 ms total); every
// fitted coefficient is clamped (Model.sanitized) so scheduling noise can
// only dull the model, never break planning. Results are cached per host
// (hostid.Key: CPU model + GOMAXPROCS + arch + Go release) so repeat
// sessions skip the probes; see HostModel.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/hostid"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/semiring"
)

// Probe workload shape: large enough that per-call driver overhead is small
// against kernel time, small enough that a cold calibration stays ~10 ms.
const (
	probeRows      = 2048
	probeDeg       = 8
	probeSparseDeg = 4
	probeDenseDeg  = 64
	probeRunWidth  = 32
	probeReps      = 3
	probeSeed      = 0x5eed_ca11b
	// spawnPayFactor converts measured per-worker dispatch overhead into
	// the work a worker must bring to amortize it: a grant is worth taking
	// when its work is ~8× the fan-out cost.
	spawnPayFactor = 8
)

// runMask builds a mask whose every row is a contiguous run of width w — the
// shape the dense-run representation exploits.
func runMask(n, w Index) *matrix.Pattern {
	p := &matrix.Pattern{NRows: n, NCols: n, RowPtr: make([]Index, n+1), Col: make([]Index, int(n)*int(w))}
	for i := Index(0); i < n; i++ {
		lo := (i * 7) % (n - w)
		p.RowPtr[i+1] = p.RowPtr[i] + w
		for j := Index(0); j < w; j++ {
			p.Col[p.RowPtr[i]+j] = lo + j
		}
	}
	return p
}

// probeTime runs one pinned-variant product probeReps times and returns the
// fastest wall time in nanoseconds (the minimum is the least-noise estimator
// for a CPU-bound probe).
func probeTime(v core.Variant, m *matrix.Pattern, a, b *matrix.CSR[float64], rep core.MaskRep, ws *core.Workspaces) float64 {
	sr := semiring.Arithmetic()
	opt := core.Options{Threads: 1, MaskRep: rep, Workspaces: ws}
	best := -1.0
	for r := 0; r < probeReps; r++ {
		start := time.Now()
		if _, err := core.MaskedSpGEMM(v, m, a, b, sr, opt); err != nil {
			return -1
		}
		ns := float64(time.Since(start).Nanoseconds())
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best
}

// fit2 solves T = perFlop·flops + perMask·maskNNZ from the two-mask probe
// pair, returning (perFlop, perMask); degenerate measurements collapse to
// the flop-only estimate with perMask 0 (sanitized later).
func fit2(tSparse, tDense, mnSparse, mnDense, flops float64) (float64, float64) {
	perMask := 0.0
	if mnDense > mnSparse && tDense > tSparse {
		perMask = (tDense - tSparse) / (mnDense - mnSparse)
	}
	perFlop := (tSparse - perMask*mnSparse) / flops
	return perFlop, perMask
}

// Calibrate runs the probe set and returns a host-fitted model (Source
// "probed"). It is deterministic in its inputs but not its measurements;
// every coefficient is clamped to a sane range. Callers wanting the
// per-host cache should use HostModel instead.
func Calibrate() *Model {
	a := grgen.ErdosRenyi(probeRows, probeDeg, probeSeed)
	mSparse := grgen.Random01Mask(probeRows, probeRows, probeSparseDeg, probeSeed+1)
	mDense := grgen.Random01Mask(probeRows, probeRows, probeDenseDeg, probeSeed+2)
	mRun := runMask(probeRows, probeRunWidth)
	ws := core.NewWorkspaces()
	flops := float64(core.Flops(a, a, 1))
	mnSparse, mnDense := float64(mSparse.NNZ()), float64(mDense.NNZ())

	one := func(alg core.Algorithm, m *matrix.Pattern, rep core.MaskRep) float64 {
		return probeTime(core.Variant{Alg: alg, Phase: core.OnePhase}, m, a, a, rep, ws)
	}

	mdl := *DefaultModel()
	mdl.Source = "probed"

	// msa-scatter: the anchor. Everything else is relative to scatterNs.
	tMSASparse := one(core.MSA, mSparse, core.RepCSR)
	tMSADense := one(core.MSA, mDense, core.RepCSR)
	scatterNs, maskNs := fit2(tMSASparse, tMSADense, mnSparse, mnDense, flops)
	if scatterNs <= 0 {
		// The anchor probe failed (preempted, errored): keep the defaults
		// rather than fit ratios against garbage.
		return mdl.sanitized()
	}
	mdl.NsPerUnit = scatterNs
	mdl.PushUnit = 1
	mdl.MaskUnit = maskNs / scatterNs

	// hash-probe.
	if hashNs, _ := fit2(one(core.Hash, mSparse, core.RepCSR), one(core.Hash, mDense, core.RepCSR), mnSparse, mnDense, flops); hashNs > 0 {
		mdl.HashUnit = hashNs / scatterNs
	}

	// heap-pop: per flop × log2 of the mean merge width.
	logU := float64(ceilLog2(int64(a.NNZ())/int64(probeRows) + 2))
	if heapNs, _ := fit2(one(core.Heap, mSparse, core.RepCSR), one(core.Heap, mDense, core.RepCSR), mnSparse, mnDense, flops); heapNs > 0 {
		mdl.HeapUnit = heapNs / (scatterNs * logU)
	}

	// bitmap-probe: same product, same mask, the representation is the only
	// variable.
	if tCSR, tBM := one(core.MCA, mDense, core.RepCSR), one(core.MCA, mDense, core.RepBitmap); tCSR > 0 && tBM > 0 {
		mdl.BitmapProbeRatio = tBM / tCSR
	}

	// dense-run: ditto for the direct-index representation.
	if tCSR, tDense := one(core.MSA, mRun, core.RepCSR), one(core.MSA, mRun, core.RepDense); tCSR > 0 && tDense > 0 {
		mdl.DenseUnit = tDense / tCSR
	}

	// Parallel-dispatch overhead → CostPerWorker: the wall cost of fanning
	// out to a second worker over trivial work, in model units, times the
	// amortization factor.
	if runtime.GOMAXPROCS(0) > 1 {
		overhead := -1.0
		for r := 0; r < probeReps; r++ {
			start := time.Now()
			parallel.ForWorkers(2, 2, 1, func(int, func() (int, int, bool)) {})
			ns := float64(time.Since(start).Nanoseconds())
			if overhead < 0 || ns < overhead {
				overhead = ns
			}
		}
		if overhead > 0 {
			mdl.CostPerWorker = int64(spawnPayFactor * overhead / scatterNs)
		}
	}
	return mdl.sanitized()
}

// --- per-host persistence ---

// calibFileVersion versions the cache file schema; a mismatch (older or
// newer writer) discards the file and re-probes.
const calibFileVersion = 1

// CalibrationDirEnv names the environment variable overriding where
// per-host calibration files live (tests and CI point it at a temp dir);
// unset means the user cache directory.
const CalibrationDirEnv = "MSPGEMM_CALIBRATION_DIR"

// hostCalibrationFile is the serialized per-host model with enough metadata
// to audit where it came from.
type hostCalibrationFile struct {
	Version    int    `json:"version"`
	HostKey    string `json:"host_key"`
	CPUModel   string `json:"cpu_model"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CreatedAt  string `json:"created_at"`
	Model      Model  `json:"model"`
}

func calibPath() string {
	dir := os.Getenv(CalibrationDirEnv)
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		dir = filepath.Join(base, "mspgemm")
	}
	return filepath.Join(dir, "calibration-"+hostid.Key()+".json")
}

// loadHostModel reads this host's cached model; nil when absent, unreadable,
// from another schema version or another host key.
func loadHostModel() *Model {
	path := calibPath()
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f hostCalibrationFile
	if json.Unmarshal(data, &f) != nil || f.Version != calibFileVersion || f.HostKey != hostid.Key() {
		return nil
	}
	m := f.Model.sanitized()
	m.Source = "host-cache"
	return m
}

// saveHostModel persists a fitted model for this host atomically: the file
// is written to a temp name in the cache directory and renamed into place,
// so a concurrent process (or a crash mid-write) can never leave a
// truncated file for loadHostModel to half-parse. Failure is best-effort —
// a read-only cache dir costs a re-probe next process — but the reason is
// returned so HostModel can surface it on the model.
func saveHostModel(m *Model) error {
	path := calibPath()
	if path == "" {
		return errors.New("no cache directory resolvable")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(hostCalibrationFile{
		Version:    calibFileVersion,
		HostKey:    hostid.Key(),
		CPUModel:   hostid.CPUModel(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Model:      *m,
	}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".calibration-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

var (
	hostModelMu     sync.Mutex
	hostModelCached *Model
)

// HostModel returns the calibrated model for this host: the in-process
// cached copy when one exists, else the per-host file a previous process
// saved, else a fresh Calibrate run (persisted for the next process). With
// force set the probes always re-run and overwrite the file. Safe for
// concurrent use; concurrent first callers calibrate once.
func HostModel(force bool) *Model {
	hostModelMu.Lock()
	defer hostModelMu.Unlock()
	if !force {
		if hostModelCached != nil {
			return hostModelCached
		}
		if m := loadHostModel(); m != nil {
			hostModelCached = m
			return m
		}
	}
	m := Calibrate()
	if err := saveHostModel(m); err != nil {
		m.SaveErr = err.Error()
	}
	hostModelCached = m
	return m
}
