// Package docscheck is the docs gate run by the CI docs job. Two checks:
// the markdown link gate scans the repository's documentation for relative
// links and fails when a target does not exist, so README/ARCHITECTURE/
// PERFORMANCE/CHANGES cannot drift into pointing at renamed or deleted
// files; the godoc gate (godoc_test.go) fails when an exported identifier
// of the public packages lacks a doc comment, so the API surface cannot
// grow undocumented.
package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docs are the files the link gate covers, relative to the repo root.
var docs = []string{
	"README.md",
	"ARCHITECTURE.md",
	"PERFORMANCE.md",
	"CHANGES.md",
	"ROADMAP.md",
}

// mdLink matches [text](target) markdown links; images and reference-style
// links are out of scope for this repository's docs.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// repoRoot walks up from the working directory to the directory holding
// go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

func TestRelativeLinksResolve(t *testing.T) {
	root := repoRoot(t)
	for _, doc := range docs {
		path := filepath.Join(root, doc)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v (listed in the docs gate but missing)", doc, err)
			continue
		}
		for _, match := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := match[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external or intra-document; not this gate's job
			}
			// Strip a trailing fragment: FILE.md#section checks FILE.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", doc, match[1], err)
			}
		}
	}
}

// TestDocsGateCoversExistingFiles keeps the gate's file list honest: every
// listed doc must exist so a rename cannot silently drop it from coverage.
func TestDocsGateCoversExistingFiles(t *testing.T) {
	root := repoRoot(t)
	for _, doc := range docs {
		if _, err := os.Stat(filepath.Join(root, doc)); err != nil {
			t.Errorf("docs gate lists %s but it does not exist: %v", doc, err)
		}
	}
}
