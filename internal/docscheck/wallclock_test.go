// The wall-clock gate: the feedback-loop and block-timing tests assert
// exact nanosecond values driven entirely by injected clocks, and a single
// time.Now() or time.Sleep() slipping into them would turn deterministic
// assertions into machine-speed-dependent flakes. The gate parses each
// designated file and fails on any use of the time package, so "the timing
// tests are deterministic" is enforced, not aspirational.
package docscheck

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// clockFreeTests are the test files whose timing assertions must come only
// from injected clocks, relative to the repo root.
var clockFreeTests = []string{
	"internal/planner/feedback_test.go",
	"internal/core/timing_test.go",
}

func TestTimingTestsAreClockFree(t *testing.T) {
	root := repoRoot(t)
	for _, rel := range clockFreeTests {
		path := filepath.Join(root, filepath.FromSlash(rel))
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Errorf("%s: %v (listed in the wall-clock gate but unparseable)", rel, err)
			continue
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "time" {
				t.Errorf("%s: imports %q — timing assertions must use injected clocks, never the wall clock", rel, p)
			}
		}
		// Belt and braces: a dot-import or alias could hide the import path
		// check's intent, so the source must not mention the clock calls at
		// all (comments excepted would be nice, but mentioning them in
		// comments is harmless enough to keep the scan simple and strict).
		src, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", rel, err)
			continue
		}
		for _, forbidden := range []string{"time.Now(", "time.Sleep(", "time.Since(", "time.Tick(", "time.After("} {
			if strings.Contains(string(src), forbidden) {
				t.Errorf("%s: contains %q — timing assertions must use injected clocks", rel, forbidden)
			}
		}
	}
}
