package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// godocPackages are the packages the godoc-coverage gate enforces: the
// public API surface, the planner (whose Plan/Stats/Cache types render
// on pkg.go.dev through the masked re-exports), the network serving
// surface (the wire protocol other implementations must interoperate
// with, and the server/client embedders build on), and — since the
// PR 10 delta/streaming surface (matrix.DeltaCSR, core.DeltaProduct,
// apps.TCStream/KTrussStream) — the storage, kernel and application
// layers it spans. Every exported identifier in them — functions,
// methods on exported types, types, and package-level const/var specs
// — must carry a doc comment.
var godocPackages = []string{
	"internal/apps",
	"internal/core",
	"internal/faultinject",
	"internal/matrix",
	"masked",
	"internal/planner",
	"internal/server",
	"internal/wire",
}

// TestGodocCoverage fails for every exported identifier without a doc
// comment, so the public surface cannot grow undocumented.
func TestGodocCoverage(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range godocPackages {
		dir := filepath.Join(root, filepath.FromSlash(pkg))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("%s/%s: %v", pkg, name, err)
			}
			checkFileGodoc(t, pkg+"/"+name, f)
		}
	}
}

// checkFileGodoc walks one file's top-level declarations.
func checkFileGodoc(t *testing.T, file string, f *ast.File) {
	t.Helper()
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedRecv(d) {
				continue
			}
			if d.Doc == nil {
				t.Errorf("%s: exported %s %s has no doc comment", file, funcKind(d), funcName(d))
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported type %s has no doc comment", file, s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						// A doc comment on the declaration group covers all
						// of its specs (the const-block idiom); otherwise the
						// spec needs its own doc or line comment.
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							t.Errorf("%s: exported %s %s has no doc comment", file, d.Tok, n.Name)
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a function is package-level or a method on
// an exported type (methods on unexported types do not render in godoc).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		var b strings.Builder
		switch t := d.Recv.List[0].Type.(type) {
		case *ast.StarExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				b.WriteString(id.Name)
			}
		case *ast.Ident:
			b.WriteString(t.Name)
		}
		if b.Len() > 0 {
			return b.String() + "." + d.Name.Name
		}
	}
	return d.Name.Name
}
