// Package perfprof computes Dolan–Moré performance profiles [20], the
// presentation the paper uses for Figures 8, 9, 12, 13 and 16: for each
// scheme s and ratio τ, the profile value ρ_s(τ) is the fraction of test
// cases on which s's runtime is within a factor τ of the best runtime
// achieved by any scheme on that case. A scheme whose curve is higher and
// further left is better; ρ_s(1) is the fraction of cases the scheme wins.
package perfprof

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one scheme's runtimes over the common case set. A non-positive,
// NaN or +Inf time marks a failed/unavailable case (the scheme is treated
// as never within any finite ratio for it).
type Series struct {
	Scheme string
	Times  []float64
}

// Profile holds computed profile curves over a τ grid.
type Profile struct {
	Taus    []float64
	Schemes []string
	// Frac[s][t] is ρ_{Schemes[s]}(Taus[t]).
	Frac [][]float64
	// Wins[s] is the number of cases scheme s achieved the best time
	// (ties award all tied schemes).
	Wins []int
	// Cases is the number of test cases.
	Cases int
}

// DefaultTaus returns the τ grid used by the harness tables, matching the
// x-range of the paper's plots (1.0 to 2.4).
func DefaultTaus() []float64 {
	var taus []float64
	for t := 1.0; t <= 2.4001; t += 0.1 {
		taus = append(taus, math.Round(t*10)/10)
	}
	return taus
}

// Compute builds the performance profile of the given series over taus.
// All series must have the same number of cases.
func Compute(series []Series, taus []float64) (*Profile, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("perfprof: no series")
	}
	nCases := len(series[0].Times)
	for _, s := range series {
		if len(s.Times) != nCases {
			return nil, fmt.Errorf("perfprof: series %q has %d cases, want %d", s.Scheme, len(s.Times), nCases)
		}
	}
	if nCases == 0 {
		return nil, fmt.Errorf("perfprof: no cases")
	}
	// Best time per case over valid entries.
	best := make([]float64, nCases)
	for c := 0; c < nCases; c++ {
		best[c] = math.Inf(1)
		for _, s := range series {
			t := s.Times[c]
			if valid(t) && t < best[c] {
				best[c] = t
			}
		}
		if math.IsInf(best[c], 1) {
			return nil, fmt.Errorf("perfprof: case %d has no valid time", c)
		}
	}
	p := &Profile{Taus: taus, Cases: nCases}
	for _, s := range series {
		p.Schemes = append(p.Schemes, s.Scheme)
		ratios := make([]float64, 0, nCases)
		wins := 0
		for c := 0; c < nCases; c++ {
			t := s.Times[c]
			if !valid(t) {
				ratios = append(ratios, math.Inf(1))
				continue
			}
			r := t / best[c]
			ratios = append(ratios, r)
			if r <= 1.0000001 {
				wins++
			}
		}
		sort.Float64s(ratios)
		frac := make([]float64, len(taus))
		for ti, tau := range taus {
			// count ratios <= tau
			cnt := sort.SearchFloat64s(ratios, tau*1.0000001)
			frac[ti] = float64(cnt) / float64(nCases)
		}
		p.Frac = append(p.Frac, frac)
		p.Wins = append(p.Wins, wins)
	}
	return p, nil
}

func valid(t float64) bool {
	return t > 0 && !math.IsNaN(t) && !math.IsInf(t, 0)
}

// Format renders the profile as a tab-separated table: one row per τ, one
// column per scheme, matching the paper's plot data.
func (p *Profile) Format() string {
	var b strings.Builder
	b.WriteString("tau")
	for _, s := range p.Schemes {
		b.WriteString("\t")
		b.WriteString(s)
	}
	b.WriteString("\n")
	for ti, tau := range p.Taus {
		fmt.Fprintf(&b, "%.2f", tau)
		for si := range p.Schemes {
			fmt.Fprintf(&b, "\t%.3f", p.Frac[si][ti])
		}
		b.WriteString("\n")
	}
	b.WriteString("wins")
	for si := range p.Schemes {
		fmt.Fprintf(&b, "\t%d/%d", p.Wins[si], p.Cases)
	}
	b.WriteString("\n")
	return b.String()
}

// BestScheme returns the scheme with the highest ρ(1) (most wins), the
// headline number the paper quotes ("MSA-1P outperforms all other
// algorithms for 65% of the test cases").
func (p *Profile) BestScheme() (string, float64) {
	bi, bw := 0, -1
	for si, w := range p.Wins {
		if w > bw {
			bi, bw = si, w
		}
	}
	return p.Schemes[bi], float64(bw) / float64(p.Cases)
}
