package perfprof

import (
	"math"
	"strings"
	"testing"
)

func TestComputeBasic(t *testing.T) {
	series := []Series{
		{Scheme: "fast", Times: []float64{1, 2, 1}},
		{Scheme: "slow", Times: []float64{2, 2, 4}},
	}
	p, err := Compute(series, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// fast: ratios {1, 1, 1} -> rho(1)=1.
	if p.Frac[0][0] != 1 {
		t.Fatalf("fast rho(1) = %v", p.Frac[0][0])
	}
	// slow: ratios {2, 1, 4} -> rho(1)=1/3, rho(2)=2/3, rho(4)=1.
	if math.Abs(p.Frac[1][0]-1.0/3) > 1e-12 {
		t.Fatalf("slow rho(1) = %v", p.Frac[1][0])
	}
	if math.Abs(p.Frac[1][1]-2.0/3) > 1e-12 {
		t.Fatalf("slow rho(2) = %v", p.Frac[1][1])
	}
	if p.Frac[1][2] != 1 {
		t.Fatalf("slow rho(4) = %v", p.Frac[1][2])
	}
	if p.Wins[0] != 3 || p.Wins[1] != 1 {
		t.Fatalf("wins = %v", p.Wins)
	}
	best, frac := p.BestScheme()
	if best != "fast" || frac != 1 {
		t.Fatalf("best = %s %v", best, frac)
	}
}

func TestComputeFailures(t *testing.T) {
	series := []Series{
		{Scheme: "ok", Times: []float64{1, 1}},
		{Scheme: "fails", Times: []float64{-1, math.Inf(1)}},
	}
	p, err := Compute(series, []float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if p.Frac[1][1] != 0 {
		t.Fatal("failed scheme must have zero fraction everywhere")
	}
	if p.Wins[1] != 0 {
		t.Fatal("failed scheme cannot win")
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, DefaultTaus()); err == nil {
		t.Fatal("no series")
	}
	if _, err := Compute([]Series{{Scheme: "a"}}, DefaultTaus()); err == nil {
		t.Fatal("no cases")
	}
	bad := []Series{
		{Scheme: "a", Times: []float64{1, 2}},
		{Scheme: "b", Times: []float64{1}},
	}
	if _, err := Compute(bad, DefaultTaus()); err == nil {
		t.Fatal("ragged series")
	}
	allFail := []Series{{Scheme: "a", Times: []float64{-1}}}
	if _, err := Compute(allFail, DefaultTaus()); err == nil {
		t.Fatal("case with no valid time")
	}
}

func TestDefaultTaus(t *testing.T) {
	taus := DefaultTaus()
	if taus[0] != 1.0 {
		t.Fatal("must start at 1")
	}
	if taus[len(taus)-1] < 2.39 {
		t.Fatalf("must reach 2.4, got %v", taus[len(taus)-1])
	}
	for i := 1; i < len(taus); i++ {
		if taus[i] <= taus[i-1] {
			t.Fatal("taus must increase")
		}
	}
}

func TestFormat(t *testing.T) {
	p, err := Compute([]Series{
		{Scheme: "x", Times: []float64{1}},
		{Scheme: "y", Times: []float64{3}},
	}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Format()
	if !strings.Contains(out, "tau\tx\ty") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "wins\t1/1\t0/1") {
		t.Fatalf("wins row missing: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 2 taus + wins
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestTieCountsBothAsWins(t *testing.T) {
	p, err := Compute([]Series{
		{Scheme: "a", Times: []float64{1, 5}},
		{Scheme: "b", Times: []float64{1, 9}},
	}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Wins[0] != 2 || p.Wins[1] != 1 {
		t.Fatalf("wins = %v, want [2 1]", p.Wins)
	}
}
