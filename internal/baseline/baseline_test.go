package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

func randCSR(r *rand.Rand, m, n Index, density float64) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: m, NCols: n}
	target := int(density * float64(m) * float64(n))
	for e := 0; e < target; e++ {
		coo.Row = append(coo.Row, Index(r.Intn(int(m))))
		coo.Col = append(coo.Col, Index(r.Intn(int(n))))
		coo.Val = append(coo.Val, float64(1+r.Intn(4)))
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b })
}

func eqF(a, b float64) bool { return a == b }

func TestBaselinesMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sr := semiring.Arithmetic()
	for trial := 0; trial < 10; trial++ {
		m := Index(5 + r.Intn(40))
		k := Index(5 + r.Intn(40))
		n := Index(5 + r.Intn(40))
		a := randCSR(r, m, k, 0.1+0.2*r.Float64())
		b := randCSR(r, k, n, 0.1+0.2*r.Float64())
		mask := randCSR(r, m, n, 0.2).Pattern()
		want := core.Reference(mask, a, b, sr, false)
		for _, threads := range []int{1, 3} {
			opt := Options{Threads: threads, Grain: 4}
			if got := SSDot(mask, a, b, sr, opt); !matrix.Equal(got, want, eqF) {
				t.Fatalf("trial %d SSDot threads=%d mismatch", trial, threads)
			}
			if got := SSSaxpy(mask, a, b, sr, opt); !matrix.Equal(got, want, eqF) {
				t.Fatalf("trial %d SSSaxpy threads=%d mismatch", trial, threads)
			}
			if got := PlainThenMask(mask, a, b, sr, opt); !matrix.Equal(got, want, eqF) {
				t.Fatalf("trial %d PlainThenMask threads=%d mismatch", trial, threads)
			}
		}
		wantC := core.Reference(mask, a, b, sr, true)
		optC := Options{Threads: 2, Complement: true}
		if got := SSSaxpy(mask, a, b, sr, optC); !matrix.Equal(got, wantC, eqF) {
			t.Fatalf("trial %d SSSaxpy complement mismatch", trial)
		}
		if got := PlainThenMask(mask, a, b, sr, optC); !matrix.Equal(got, wantC, eqF) {
			t.Fatalf("trial %d PlainThenMask complement mismatch", trial)
		}
	}
}

func TestSpGEMMPlain(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sr := semiring.Arithmetic()
	a := randCSR(r, 20, 30, 0.15)
	b := randCSR(r, 30, 25, 0.15)
	got := SpGEMM(a, b, sr, Options{Threads: 2})
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if !got.IsSortedRows() {
		t.Fatal("SpGEMM rows must be sorted")
	}
	// Compare against complement-of-empty-mask reference (= full product).
	empty := matrix.NewEmptyCSR[float64](20, 25).Pattern()
	want := core.Reference(empty, a, b, sr, true)
	if !matrix.Equal(got, want, eqF) {
		t.Fatal("plain SpGEMM mismatch")
	}
}

// TestGallopDotNonCommutative ensures operand order is preserved through
// the galloping swap (PlusSecond multiplies must return the B value).
func TestGallopDotNonCommutative(t *testing.T) {
	sr := semiring.PlusSecond()
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		m := Index(5 + r.Intn(20))
		k := Index(5 + r.Intn(20))
		n := Index(5 + r.Intn(20))
		a := randCSR(r, m, k, 0.3)
		// Very dense B forces the swap path (B columns longer than A rows).
		b := randCSR(r, k, n, 0.8)
		mask := randCSR(r, m, n, 0.5).Pattern()
		want := core.Reference(mask, a, b, sr, false)
		got := SSDot(mask, a, b, sr, Options{})
		if !matrix.Equal(got, want, eqF) {
			t.Fatalf("trial %d: non-commutative semiring broken by gallop swap", trial)
		}
	}
}

func TestBaselinesQuick(t *testing.T) {
	sr := semiring.Arithmetic()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := Index(2 + r.Intn(30))
		a := randCSR(r, n, n, 0.2)
		b := randCSR(r, n, n, 0.2)
		mask := randCSR(r, n, n, 0.3).Pattern()
		want := core.Reference(mask, a, b, sr, false)
		return matrix.Equal(SSDot(mask, a, b, sr, Options{}), want, eqF) &&
			matrix.Equal(SSSaxpy(mask, a, b, sr, Options{}), want, eqF)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesEmpty(t *testing.T) {
	sr := semiring.Arithmetic()
	e := matrix.NewEmptyCSR[float64](4, 4)
	full := matrix.NewCSRFromCOO(&matrix.COO[float64]{
		NRows: 4, NCols: 4,
		Row: []Index{0, 1, 2, 3}, Col: []Index{1, 2, 3, 0}, Val: []float64{1, 1, 1, 1},
	}, nil)
	if SSDot(e.Pattern(), full, full, sr, Options{}).NNZ() != 0 {
		t.Fatal("empty mask: SSDot")
	}
	if SSSaxpy(full.Pattern(), e, full, sr, Options{}).NNZ() != 0 {
		t.Fatal("empty A: SSSaxpy")
	}
	if PlainThenMask(full.Pattern(), full, e, sr, Options{}).NNZ() != 0 {
		t.Fatal("empty B: PlainThenMask")
	}
}
