// Package baseline reimplements the comparison targets of the paper's
// evaluation (§3, §8). SuiteSparse:GraphBLAS itself is a closed-source (to
// this offline environment) C library, so its two masked-SpGEMM strategies
// are rebuilt here following their published structure:
//
//   - SSDot mirrors GrB_mxm's dot-product path ("SS:DOT"): a pull-based
//     masked multiply that transposes B on every call (the overhead §8.4
//     attributes to the library) and intersects rows of A with rows of Bᵀ
//     using a binary-search (galloping) intersection rather than the linear
//     merge our Inner kernel uses.
//
//   - SSSaxpy mirrors the saxpy path ("SS:SAXPY"): Gustavson with a dense
//     SPA that computes the *full* unmasked row and applies the mask during
//     the final gather — the mask filters output, it is not part of the
//     accumulation state machine. This is the key algorithmic difference
//     from the paper's MSA, whose tri-state accumulator skips masked-out
//     products at insert time.
//
//   - PlainThenMask is the Figure-1 strawman: a complete unmasked SpGEMM
//     materialized, then element-wise masking.
//
// These preserve the algorithmic distinctions the paper measures, not
// SuiteSparse's constant factors; see DESIGN.md "Substitutions".
package baseline

import (
	"sort"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Options configures a baseline call. It is the same type as core.Options,
// so one session-level thread budget, context and workspace arena govern
// the paper's variants and the SuiteSparse-style baselines alike. The
// baselines consume Threads, Grain, Complement and Ctx; Complement is
// supported by SSSaxpy (SS:GB supports complemented masks in its saxpy
// path) while SSDot ignores it and callers should treat SS:DOT as
// complement-incapable like the paper does (it is excluded from the BC
// comparison as prohibitively slow).
//
// Because the baselines predate error returns, a cancelled Ctx stops their
// loops early and the partial result is garbage; callers that pass a
// cancellable context must check opt.Err() after the call (the apps engine
// wrappers do).
type Options = core.Options

// SSDot computes C = M .* (A·B) with the dot-product strategy: B is
// transposed to CSR-of-Bᵀ (cost included, as in the library §8.4), then for
// every mask entry (i, j) the sparse dot A_i* · (Bᵀ)_j* is evaluated with a
// galloping intersection that binary-searches the longer operand.
func SSDot[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) *matrix.CSR[T] {
	bt := matrix.Transpose(b) // per-call transpose, mirroring the library overhead
	nrows := m.NRows
	counts := make([]int64, nrows)
	type rowBuf struct {
		col []Index
		val []T
	}
	bufs := make([]rowBuf, nrows)
	parallel.ForChunksCtx(opt.Ctx, int(nrows), opt.Workers(), opt.Grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ii := Index(i)
			aLo, aHi := a.RowPtr[ii], a.RowPtr[ii+1]
			if aLo == aHi {
				continue
			}
			aIdx := a.Col[aLo:aHi]
			aVal := a.Val[aLo:aHi]
			mrow := m.Row(ii)
			var cols []Index
			var vals []T
			for _, j := range mrow {
				bLo, bHi := bt.RowPtr[j], bt.RowPtr[j+1]
				v, ok := gallopDot(aIdx, aVal, bt.Col[bLo:bHi], bt.Val[bLo:bHi], sr)
				if ok {
					cols = append(cols, j)
					vals = append(vals, v)
				}
			}
			bufs[i] = rowBuf{cols, vals}
			counts[i] = int64(len(cols))
		}
	})
	return assembleRows(nrows, m.NCols, counts, func(i Index) ([]Index, []T) {
		return bufs[i].col, bufs[i].val
	}, opt)
}

// gallopDot intersects two sorted index lists, binary-searching the longer
// list for each element of the shorter — the strategy dot-product codes use
// when operand lengths are very unbalanced.
func gallopDot[T any](aIdx []Index, aVal []T, bIdx []Index, bVal []T, sr semiring.Semiring[T]) (T, bool) {
	var acc T
	found := false
	if len(aIdx) > len(bIdx) {
		aIdx, bIdx = bIdx, aIdx
		aVal, bVal = bVal, aVal
		// semiring multiply may be non-commutative (PlusSecond); swap back
		// inside the loop via a flag.
		return gallopDotSwapped(aIdx, aVal, bIdx, bVal, sr)
	}
	lo := 0
	for t, j := range aIdx {
		pos := lo + sort.Search(len(bIdx)-lo, func(x int) bool { return bIdx[lo+x] >= j })
		if pos < len(bIdx) && bIdx[pos] == j {
			v := sr.Mul(aVal[t], bVal[pos])
			if found {
				acc = sr.Add(acc, v)
			} else {
				acc, found = v, true
			}
			lo = pos + 1
		} else {
			lo = pos
		}
		if lo >= len(bIdx) {
			break
		}
	}
	return acc, found
}

// gallopDotSwapped is gallopDot with the operands swapped (a is the short
// list but holds B values), preserving Mul(aSide, bSide) argument order.
func gallopDotSwapped[T any](bShort []Index, bShortVal []T, aLong []Index, aLongVal []T, sr semiring.Semiring[T]) (T, bool) {
	var acc T
	found := false
	lo := 0
	for t, j := range bShort {
		pos := lo + sort.Search(len(aLong)-lo, func(x int) bool { return aLong[lo+x] >= j })
		if pos < len(aLong) && aLong[pos] == j {
			v := sr.Mul(aLongVal[pos], bShortVal[t])
			if found {
				acc = sr.Add(acc, v)
			} else {
				acc, found = v, true
			}
			lo = pos + 1
		} else {
			lo = pos
		}
		if lo >= len(aLong) {
			break
		}
	}
	return acc, found
}

// SSSaxpy computes C = M .* (A·B) (or ¬M per opt) with the saxpy strategy:
// a dense sparse-accumulator per worker computes the full unmasked row
// A_i*·B, then the gather step filters through the mask. Products for
// masked-out columns are computed and discarded — exactly the work the
// paper's mask-aware accumulators avoid.
func SSSaxpy[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) *matrix.CSR[T] {
	nrows := m.NRows
	counts := make([]int64, nrows)
	type rowBuf struct {
		col []Index
		val []T
	}
	bufs := make([]rowBuf, nrows)
	parallel.ForWorkersCtx(opt.Ctx, int(nrows), opt.Workers(), opt.Grain, func(_ int, claim func() (int, int, bool)) {
		val := make([]T, b.NCols)
		occupied := make([]bool, b.NCols)
		var touched []Index
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				ii := Index(i)
				touched = touched[:0]
				// Full unmasked Gustavson row.
				for kk := a.RowPtr[ii]; kk < a.RowPtr[ii+1]; kk++ {
					k := a.Col[kk]
					av := a.Val[kk]
					for p := b.RowPtr[k]; p < b.RowPtr[k+1]; p++ {
						j := b.Col[p]
						v := sr.Mul(av, b.Val[p])
						if occupied[j] {
							val[j] = sr.Add(val[j], v)
						} else {
							occupied[j] = true
							val[j] = v
							touched = append(touched, j)
						}
					}
				}
				// Mask applied at gather time only.
				var cols []Index
				var vals []T
				mrow := m.Row(ii)
				if !opt.Complement {
					for _, j := range mrow {
						if occupied[j] {
							cols = append(cols, j)
							vals = append(vals, val[j])
						}
					}
				} else {
					sortIdx(touched)
					mi := 0
					for _, j := range touched {
						for mi < len(mrow) && mrow[mi] < j {
							mi++
						}
						if mi < len(mrow) && mrow[mi] == j {
							continue
						}
						cols = append(cols, j)
						vals = append(vals, val[j])
					}
				}
				for _, j := range touched {
					occupied[j] = false
				}
				bufs[i] = rowBuf{cols, vals}
				counts[i] = int64(len(cols))
			}
		}
	})
	return assembleRows(nrows, m.NCols, counts, func(i Index) ([]Index, []T) {
		return bufs[i].col, bufs[i].val
	}, opt)
}

// PlainThenMask materializes the full product A·B (hash-free dense-SPA
// Gustavson) and then applies the mask element-wise: the strawman of
// Figure 1 that does all the unnecessary work masking is meant to avoid.
func PlainThenMask[T any](m *matrix.Pattern, a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) *matrix.CSR[T] {
	full := SpGEMM(a, b, sr, opt)
	if opt.Complement {
		return complementMask(full, m)
	}
	return matrix.MaskPattern(full, m)
}

// SpGEMM is the plain (unmasked) Gustavson product with a dense SPA,
// row-parallel; the substrate both PlainThenMask and tests use.
func SpGEMM[T any](a, b *matrix.CSR[T], sr semiring.Semiring[T], opt Options) *matrix.CSR[T] {
	nrows := a.NRows
	counts := make([]int64, nrows)
	type rowBuf struct {
		col []Index
		val []T
	}
	bufs := make([]rowBuf, nrows)
	parallel.ForWorkersCtx(opt.Ctx, int(nrows), opt.Workers(), opt.Grain, func(_ int, claim func() (int, int, bool)) {
		val := make([]T, b.NCols)
		occupied := make([]bool, b.NCols)
		var touched []Index
		for {
			lo, hi, ok := claim()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				ii := Index(i)
				touched = touched[:0]
				for kk := a.RowPtr[ii]; kk < a.RowPtr[ii+1]; kk++ {
					k := a.Col[kk]
					av := a.Val[kk]
					for p := b.RowPtr[k]; p < b.RowPtr[k+1]; p++ {
						j := b.Col[p]
						v := sr.Mul(av, b.Val[p])
						if occupied[j] {
							val[j] = sr.Add(val[j], v)
						} else {
							occupied[j] = true
							val[j] = v
							touched = append(touched, j)
						}
					}
				}
				sortIdx(touched)
				cols := append([]Index(nil), touched...)
				vals := make([]T, len(touched))
				for t, j := range touched {
					vals[t] = val[j]
					occupied[j] = false
				}
				bufs[i] = rowBuf{cols, vals}
				counts[i] = int64(len(cols))
			}
		}
	})
	return assembleRows(nrows, b.NCols, counts, func(i Index) ([]Index, []T) {
		return bufs[i].col, bufs[i].val
	}, opt)
}

// complementMask keeps entries of a whose positions are NOT in mask.
func complementMask[T any](a *matrix.CSR[T], mask *matrix.Pattern) *matrix.CSR[T] {
	out := &matrix.CSR[T]{NRows: a.NRows, NCols: a.NCols, RowPtr: make([]Index, a.NRows+1)}
	for i := Index(0); i < a.NRows; i++ {
		mrow := mask.Row(i)
		mi := 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			for mi < len(mrow) && mrow[mi] < j {
				mi++
			}
			if mi < len(mrow) && mrow[mi] == j {
				continue
			}
			out.Col = append(out.Col, j)
			out.Val = append(out.Val, a.Val[k])
		}
		out.RowPtr[i+1] = Index(len(out.Col))
	}
	return out
}

// assembleRows concatenates per-row buffers into a CSR matrix.
func assembleRows[T any](nrows, ncols Index, counts []int64, row func(Index) ([]Index, []T), opt Options) *matrix.CSR[T] {
	offs := make([]int64, len(counts))
	copy(offs, counts)
	total := parallel.ExclusiveScan(offs)
	out := &matrix.CSR[T]{
		NRows:  nrows,
		NCols:  ncols,
		RowPtr: make([]Index, nrows+1),
		Col:    make([]Index, total),
		Val:    make([]T, total),
	}
	for i := Index(0); i < nrows; i++ {
		out.RowPtr[i] = Index(offs[i])
	}
	out.RowPtr[nrows] = Index(total)
	parallel.ForChunksCtx(opt.Ctx, int(nrows), opt.Workers(), 512, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := row(Index(i))
			copy(out.Col[offs[i]:], cols)
			copy(out.Val[offs[i]:], vals)
		}
	})
	return out
}

func sortIdx(s []Index) {
	if len(s) <= 32 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
