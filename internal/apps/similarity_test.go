package apps

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
)

func randFeatures(r *rand.Rand, items, features Index, perItem int) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: items, NCols: features}
	for i := Index(0); i < items; i++ {
		for k := 0; k < perItem; k++ {
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, Index(r.Intn(int(features))))
			coo.Val = append(coo.Val, float64(1+r.Intn(3)))
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return a + b })
}

func dotRows(f *matrix.CSR[float64], i, j Index) float64 {
	ci, vi := f.Row(i)
	cj, vj := f.Row(j)
	var s float64
	a, b := 0, 0
	for a < len(ci) && b < len(cj) {
		switch {
		case ci[a] == cj[b]:
			s += vi[a] * vj[b]
			a++
			b++
		case ci[a] < cj[b]:
			a++
		default:
			b++
		}
	}
	return s
}

func TestDotSimilarityMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	f := randFeatures(r, 60, 40, 5)
	cand := grgen.ErdosRenyi(60, 8, 5).Pattern()
	eng := EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{Threads: 2})
	res, err := DotSimilarity(f, cand, eng)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.PatternSubset(res.Scores.Pattern(), cand) {
		t.Fatal("scores must be a subset of the candidate mask")
	}
	for i := Index(0); i < res.Scores.NRows; i++ {
		cols, vals := res.Scores.Row(i)
		for k := range cols {
			want := dotRows(f, i, cols[k])
			if math.Abs(vals[k]-want) > 1e-9 {
				t.Fatalf("pair (%d,%d): %v want %v", i, cols[k], vals[k], want)
			}
		}
	}
	if res.Pairs != res.Scores.NNZ() {
		t.Fatal("pair count")
	}
}

func TestDotSimilarityDimCheck(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	f := randFeatures(r, 10, 5, 2)
	bad := grgen.ErdosRenyi(9, 2, 1).Pattern()
	eng := EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{})
	if _, err := DotSimilarity(f, bad, eng); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestCosineSimilarityNormalized(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	f := randFeatures(r, 50, 30, 4)
	cand := grgen.ErdosRenyi(50, 6, 9).Pattern()
	eng := EngineVariant(core.Variant{Alg: core.Hash, Phase: core.OnePhase}, core.Options{})
	res, err := CosineSimilarity(f, cand, eng)
	if err != nil {
		t.Fatal(err)
	}
	for i := Index(0); i < res.Scores.NRows; i++ {
		cols, vals := res.Scores.Row(i)
		for k := range cols {
			if vals[k] < -1e-9 || vals[k] > 1+1e-9 {
				t.Fatalf("cosine out of [0,1]: %v", vals[k])
			}
			// Self-pairs (if candidates include the diagonal) must be 1.
			if cols[k] == i && math.Abs(vals[k]-1) > 1e-9 {
				t.Fatalf("self-similarity = %v, want 1", vals[k])
			}
		}
	}
}

func TestTopKCandidates(t *testing.T) {
	// Three items: 0 and 1 share two features, 2 shares nothing.
	coo := &matrix.COO[float64]{NRows: 3, NCols: 4}
	put := func(i, j Index) {
		coo.Row = append(coo.Row, i)
		coo.Col = append(coo.Col, j)
		coo.Val = append(coo.Val, 1)
	}
	put(0, 0)
	put(0, 1)
	put(1, 0)
	put(1, 1)
	put(2, 3)
	f := matrix.NewCSRFromCOO(coo, nil)
	cand := TopKCandidates(f, 2, 0)
	if cand.NNZ() != 2 { // (0,1) and (1,0)
		t.Fatalf("candidates nnz = %d, want 2", cand.NNZ())
	}
	row0 := cand.Row(0)
	if len(row0) != 1 || row0[0] != 1 {
		t.Fatalf("row 0 candidates = %v", row0)
	}
	// minShared=3 excludes the pair.
	if TopKCandidates(f, 3, 0).NNZ() != 0 {
		t.Fatal("minShared filter")
	}
	// Per-feature cap: cap of 1 means no pairs form.
	if TopKCandidates(f, 1, 1).NNZ() != 0 {
		t.Fatal("maxPerFeature cap")
	}
}

func TestSimilarityAllEnginesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	f := randFeatures(r, 40, 25, 4)
	cand := TopKCandidates(f, 1, 8)
	if cand.NNZ() == 0 {
		t.Skip("no candidates generated")
	}
	ref, err := DotSimilarity(f, cand, EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Hash-1P", "MCA-2P", "Heap-1P", "Inner-1P"} {
		v, _ := core.VariantByName(name)
		got, err := DotSimilarity(f, cand, EngineVariant(v, core.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got.Scores, ref.Scores, func(a, b float64) bool { return a == b }) {
			t.Fatalf("%s disagrees", name)
		}
	}
}
