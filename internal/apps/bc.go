package apps

import (
	"fmt"
	"time"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// BCResult reports a betweenness centrality run.
type BCResult struct {
	// Scores holds the betweenness centrality contribution of the processed
	// source batch for every vertex (unnormalized Brandes sums).
	Scores []float64
	// BatchSize is the number of sources processed.
	BatchSize int
	// Depth is the number of BFS levels explored.
	Depth int
	// MaskedTime is the total time spent in masked SpGEMM calls (forward
	// complemented + backward non-complemented).
	MaskedTime time.Duration
	// ForwardTime and BackwardTime split MaskedTime by stage.
	ForwardTime, BackwardTime time.Duration
	// TotalTime is the end-to-end time.
	TotalTime time.Duration
	// Edges is nnz(A), used by the TEPS metric.
	Edges int64
}

// MTEPS returns the paper's §8.4 metric: batch_size × num_edges /
// total_time, in millions of traversed edges per second.
func (r BCResult) MTEPS() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.BatchSize) * float64(r.Edges) / r.TotalTime.Seconds() / 1e6
}

// BetweennessCentrality computes the batched-source Brandes betweenness
// centrality contributions of the given sources on the unweighted graph a
// (adjacency with value 1 per edge), using the two-stage multi-source
// algorithm of [8] expressed in masked SpGEMM (§8.4):
//
//   - The forward (BFS) stage expands a b×n frontier F through F·A, masked
//     by the *complement* of the visited pattern so discovered vertices are
//     never rediscovered — the paper's canonical use of complemented masks.
//   - The backward (dependency accumulation) stage walks the BFS levels in
//     reverse, propagating W·Aᵀ masked by the previous level's pattern — a
//     non-complemented masked SpGEMM.
//
// The engine supplies the masked SpGEMM implementation under test; engines
// that cannot do complemented masks (MCA, SS:DOT) return an error.
func BetweennessCentrality(a *matrix.CSR[float64], sources []Index, eng Engine) (BCResult, error) {
	start := time.Now()
	n := a.NRows
	b := Index(len(sources))
	res := BCResult{BatchSize: len(sources), Edges: int64(a.NNZ())}
	if b == 0 {
		res.Scores = make([]float64, n)
		res.TotalTime = time.Since(start)
		return res, nil
	}
	at := matrix.Transpose(a)

	// Frontier F: row s holds the BFS frontier of sources[s] with values
	// σ (number of shortest paths). Initially F[s, sources[s]] = 1.
	coo := &matrix.COO[float64]{NRows: b, NCols: n}
	for s, src := range sources {
		if src < 0 || src >= n {
			return res, fmt.Errorf("apps: source %d out of range [0,%d)", src, n)
		}
		coo.Row = append(coo.Row, Index(s))
		coo.Col = append(coo.Col, src)
		coo.Val = append(coo.Val, 1)
	}
	frontier := matrix.NewCSRFromCOO(coo, func(x, y float64) float64 { return x + y })

	// numsp accumulates σ over all levels; levels stacks each frontier.
	numsp := frontier.Clone()
	levels := []*matrix.CSR[float64]{frontier}
	arith := semiring.Arithmetic()

	// Forward stage: F ← ⟨¬numsp⟩ (F·A), numsp += F.
	for frontier.NNZ() > 0 {
		t0 := time.Now()
		next, err := eng.Mult(numsp.Pattern(), frontier, a, arith, true)
		dt := time.Since(t0)
		res.MaskedTime += dt
		res.ForwardTime += dt
		if err != nil {
			return res, fmt.Errorf("apps: BC forward with %s: %w", eng.Name, err)
		}
		if next.NNZ() == 0 {
			break
		}
		numsp = matrix.EWiseAdd(numsp, next, func(x, y float64) float64 { return x + y })
		levels = append(levels, next)
		frontier = next
	}
	res.Depth = len(levels)

	// Backward stage: delta (sparse b×n) accumulates the dependency δ.
	// For level d from deepest to 1:
	//   W = ⟨S_d⟩ (1+δ)/σ
	//   W = ⟨S_{d-1}⟩ (W·Aᵀ)
	//   δ += W .* σ
	delta := matrix.NewEmptyCSR[float64](b, n)
	for d := len(levels) - 1; d >= 1; d-- {
		sd := levels[d]
		// W on S_d's pattern: (1 + delta)/numsp. delta may lack entries
		// (δ=0); join S_d with delta (left outer) then divide by numsp.
		w := buildW(sd, delta, numsp)
		t0 := time.Now()
		wp, err := eng.Mult(levels[d-1].Pattern(), w, at, arith, false)
		dt := time.Since(t0)
		res.MaskedTime += dt
		res.BackwardTime += dt
		if err != nil {
			return res, fmt.Errorf("apps: BC backward with %s: %w", eng.Name, err)
		}
		contrib := matrix.EWiseMult(wp, numsp, func(x, y float64) float64 { return x * y })
		delta = matrix.EWiseAdd(delta, contrib, func(x, y float64) float64 { return x + y })
	}

	// bc(v) = Σ_s δ_s(v), excluding each source's own δ_s(s).
	scores := make([]float64, n)
	for s := Index(0); s < b; s++ {
		cols, vals := delta.Row(s)
		src := sources[s]
		for k := range cols {
			if cols[k] == src {
				continue
			}
			scores[cols[k]] += vals[k]
		}
	}
	res.Scores = scores
	res.TotalTime = time.Since(start)
	return res, nil
}

// buildW computes ⟨S_d⟩ (1+δ)/σ: for every position in sd's pattern, the
// value (1 + delta[pos]) / numsp[pos]. delta positions missing mean δ=0;
// numsp is a pattern superset of every level, so the lookup always hits.
func buildW(sd, delta, numsp *matrix.CSR[float64]) *matrix.CSR[float64] {
	// (1+δ) restricted to S_d: start from S_d pattern with value 1, add
	// delta on the intersection.
	w := sd.Clone()
	for i := Index(0); i < w.NRows; i++ {
		wi, wEnd := w.RowPtr[i], w.RowPtr[i+1]
		di, dEnd := delta.RowPtr[i], delta.RowPtr[i+1]
		ni, nEnd := numsp.RowPtr[i], numsp.RowPtr[i+1]
		for ; wi < wEnd; wi++ {
			j := w.Col[wi]
			dv := 0.0
			for di < dEnd && delta.Col[di] < j {
				di++
			}
			if di < dEnd && delta.Col[di] == j {
				dv = delta.Val[di]
			}
			for ni < nEnd && numsp.Col[ni] < j {
				ni++
			}
			sigma := 1.0
			if ni < nEnd && numsp.Col[ni] == j {
				sigma = numsp.Val[ni]
			}
			w.Val[wi] = (1 + dv) / sigma
		}
	}
	return w
}

// BrandesExact is the reference sequential Brandes algorithm (BFS variant)
// for unweighted graphs, accumulating over the given sources only. Used to
// validate the masked SpGEMM formulation.
func BrandesExact(a *matrix.CSR[float64], sources []Index) []float64 {
	n := int(a.NRows)
	bc := make([]float64, n)
	sigma := make([]float64, n)
	dist := make([]int, n)
	deltaArr := make([]float64, n)
	order := make([]Index, 0, n)
	queue := make([]Index, 0, n)
	for _, s := range sources {
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			deltaArr[i] = 0
		}
		order = order[:0]
		queue = queue[:0]
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			cols, _ := a.Row(v)
			for _, w := range cols {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			cols, _ := a.Row(w)
			for _, v := range cols {
				if dist[v] == dist[w]-1 {
					deltaArr[v] += sigma[v] / sigma[w] * (1 + deltaArr[w])
				}
			}
			if w != s {
				bc[w] += deltaArr[w]
			}
		}
	}
	return bc
}
