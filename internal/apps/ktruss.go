package apps

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// KTrussResult reports a k-truss run.
type KTrussResult struct {
	// Edges is the number of directed edge slots remaining (2× undirected
	// edges, symmetric storage).
	Edges int
	// Iterations is the number of masked SpGEMM + prune rounds until the
	// fixed point.
	Iterations int
	// Flops is the sum of flops(A·A) over all masked SpGEMM calls; the
	// paper reports Σflops / Σtime for this benchmark (§8.3).
	Flops int64
	// MaskedTime is the total time spent in masked SpGEMM calls.
	MaskedTime time.Duration
	// TotalTime includes support thresholding and rebuild.
	TotalTime time.Duration
}

// GFLOPS returns the paper's §8.3 metric: 2·Σflops over all masked SpGEMM
// operations divided by the total time to execute them.
func (r KTrussResult) GFLOPS() float64 {
	if r.MaskedTime <= 0 {
		return 0
	}
	return 2 * float64(r.Flops) / r.MaskedTime.Seconds() / 1e9
}

// KTruss computes the k-truss of the undirected graph g (symmetric
// adjacency, no self-loops): the maximal subgraph in which every edge is
// supported by at least k-2 triangles. Each round computes edge supports
// with one masked SpGEMM, S = A .* (A·A) on the plus-pair semiring, then
// deletes under-supported edges; it stops when no edge is deleted (§8.3
// uses k=5).
func KTruss(g *matrix.CSR[float64], k int, eng Engine) (*matrix.CSR[float64], KTrussResult, error) {
	if k < 3 {
		return nil, KTrussResult{}, fmt.Errorf("apps: k-truss requires k >= 3, got %d", k)
	}
	start := time.Now()
	support := float64(k - 2)
	a := g
	var res KTrussResult
	for {
		res.Iterations++
		res.Flops += core.Flops(a, a, 0)
		// The mask is the current graph itself, so its density is known
		// without a scan — pass it to the engine as a representation hint
		// (dense adjacency rows favor the bitmap probe).
		hint := core.HintMaskRep(int64(a.NNZ()), int64(a.NRows))
		t0 := time.Now()
		s, err := eng.mult(a.Pattern(), a, a, semiring.PlusPairF(), false, hint)
		res.MaskedTime += time.Since(t0)
		if err != nil {
			return nil, res, fmt.Errorf("apps: k-truss with %s: %w", eng.Name, err)
		}
		// Keep edges with enough support. Edges absent from S have zero
		// support (no wedge closed) and are dropped implicitly.
		next := matrix.FilterEntries(s, func(_, _ Index, v float64) bool { return v >= support })
		// Edge values reset to 1 for the next multiplication round.
		for i := range next.Val {
			next.Val[i] = 1
		}
		if next.NNZ() == a.NNZ() {
			res.Edges = next.NNZ()
			res.TotalTime = time.Since(start)
			return next, res, nil
		}
		a = next
		if a.NNZ() == 0 {
			res.Edges = 0
			res.TotalTime = time.Since(start)
			return a, res, nil
		}
	}
}

// KTrussExact is a brute-force reference used by tests: iteratively counts
// per-edge triangle support by adjacency-list intersection and prunes.
func KTrussExact(g *matrix.CSR[float64], k int) *matrix.CSR[float64] {
	support := k - 2
	adj := make([]map[Index]bool, g.NRows)
	for i := Index(0); i < g.NRows; i++ {
		adj[i] = make(map[Index]bool)
		cols, _ := g.Row(i)
		for _, j := range cols {
			adj[i][j] = true
		}
	}
	for changed := true; changed; {
		changed = false
		type edge struct{ u, v Index }
		var drop []edge
		for u := Index(0); u < g.NRows; u++ {
			for v := range adj[u] {
				if v < u {
					continue
				}
				cnt := 0
				for w := range adj[u] {
					if w != v && adj[v][w] {
						cnt++
					}
				}
				if cnt < support {
					drop = append(drop, edge{u, v})
				}
			}
		}
		for _, e := range drop {
			delete(adj[e.u], e.v)
			delete(adj[e.v], e.u)
			changed = true
		}
	}
	coo := &matrix.COO[float64]{NRows: g.NRows, NCols: g.NCols}
	for u := Index(0); u < g.NRows; u++ {
		for v := range adj[u] {
			coo.Row = append(coo.Row, u)
			coo.Col = append(coo.Col, v)
			coo.Val = append(coo.Val, 1)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}
