package apps

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Breadth-first search expressed in masked products — the primitive's
// original habitat: the paper (§4) traces masking to direction-optimized
// graph traversal [5, 38], where the complement of the visited set masks
// frontier expansion so vertices are never rediscovered.

// BFSResult reports a single-source direction-optimized BFS.
type BFSResult struct {
	// Level[v] is the BFS depth of v, or -1 if unreachable.
	Level []int32
	// Depth is the number of frontier expansions performed.
	Depth int
	// PushSteps and PullSteps count the direction decisions taken.
	PushSteps, PullSteps int
	// TotalTime is the end-to-end latency.
	TotalTime time.Duration
}

// BFS runs a single-source breadth-first search on the graph a (CSR
// adjacency; for directed graphs edges point source→target) using the
// direction-optimized masked SpGEVM: each step computes
// next = ¬visited .* (frontierᵀ·A), switching between the push (MSA) and
// pull (dot) kernels by the [5] heuristic.
func BFS(a *matrix.CSR[float64], source Index, opt core.Options) (BFSResult, error) {
	n := a.NRows
	if source < 0 || source >= n {
		return BFSResult{}, fmt.Errorf("apps: BFS source %d out of range [0,%d)", source, n)
	}
	start := time.Now()
	bcsc := matrix.ToCSC(a)
	sr := semiring.PlusPairF()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	frontier := &matrix.SparseVec[float64]{N: n, Idx: []Index{source}, Val: []float64{1}}
	visited := frontier.Clone()
	res := BFSResult{}
	stepOpt := opt // one copy: the session's ctx/threads/workspaces ride along
	stepOpt.Complement = true
	for frontier.NNZ() > 0 {
		next, dir, err := core.MaskedSpGEVMAuto(visited, frontier, a, bcsc, sr, stepOpt)
		if err != nil {
			return res, fmt.Errorf("apps: BFS step %d: %w", res.Depth, err)
		}
		if dir == core.Pull {
			res.PullSteps++
		} else {
			res.PushSteps++
		}
		res.Depth++
		if next.NNZ() == 0 {
			break
		}
		for _, v := range next.Idx {
			level[v] = int32(res.Depth)
		}
		visited = matrix.EWiseAddVec(visited, next, func(x, y float64) float64 { return x + y })
		frontier = next
	}
	res.Level = level
	res.TotalTime = time.Since(start)
	return res, nil
}

// MultiSourceBFSResult reports a batched BFS.
type MultiSourceBFSResult struct {
	// Levels[s][v] is the depth of v from sources[s], or -1.
	Levels [][]int32
	// Depth is the deepest level over the batch.
	Depth int
	// MaskedTime is the time inside masked SpGEMM calls.
	MaskedTime time.Duration
	// TotalTime is end-to-end.
	TotalTime time.Duration
}

// MultiSourceBFS runs BFS from every source simultaneously as a b×n
// frontier matrix expanded with complement-masked SpGEMM — the multi-source
// traversal pattern the paper's introduction describes ("any multi-source
// graph traversal where the mask serves as a filter to avoid rediscovery").
func MultiSourceBFS(a *matrix.CSR[float64], sources []Index, eng Engine) (MultiSourceBFSResult, error) {
	start := time.Now()
	n := a.NRows
	b := Index(len(sources))
	res := MultiSourceBFSResult{}
	res.Levels = make([][]int32, len(sources))
	for s := range res.Levels {
		res.Levels[s] = make([]int32, n)
		for v := range res.Levels[s] {
			res.Levels[s][v] = -1
		}
	}
	if b == 0 {
		res.TotalTime = time.Since(start)
		return res, nil
	}
	coo := &matrix.COO[float64]{NRows: b, NCols: n}
	for s, src := range sources {
		if src < 0 || src >= n {
			return res, fmt.Errorf("apps: source %d out of range [0,%d)", src, n)
		}
		coo.Row = append(coo.Row, Index(s))
		coo.Col = append(coo.Col, src)
		coo.Val = append(coo.Val, 1)
		res.Levels[s][src] = 0
	}
	frontier := matrix.NewCSRFromCOO(coo, func(x, y float64) float64 { return 1 })
	visited := frontier.Clone()
	sr := semiring.PlusPairF()
	for frontier.NNZ() > 0 {
		// The mask is the visited set, whose density the traversal tracks
		// exactly: as the search saturates, visited rows densify and the
		// bitmap probe starts paying — hint the engine without a scan.
		hint := core.HintMaskRep(int64(visited.NNZ()), int64(visited.NRows))
		t0 := time.Now()
		next, err := eng.mult(visited.Pattern(), frontier, a, sr, true, hint)
		res.MaskedTime += time.Since(t0)
		if err != nil {
			return res, fmt.Errorf("apps: multi-source BFS with %s: %w", eng.Name, err)
		}
		if next.NNZ() == 0 {
			break
		}
		res.Depth++
		for s := Index(0); s < b; s++ {
			cols, _ := next.Row(s)
			for _, v := range cols {
				res.Levels[s][v] = int32(res.Depth)
			}
		}
		visited = matrix.EWiseAdd(visited, next, func(x, y float64) float64 { return 1 })
		frontier = next
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// BFSExact is the reference queue-based BFS for validation.
func BFSExact(a *matrix.CSR[float64], source Index) []int32 {
	n := int(a.NRows)
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	queue := []Index{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		cols, _ := a.Row(v)
		for _, w := range cols {
			if level[w] < 0 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return level
}
