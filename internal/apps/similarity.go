package apps

import (
	"fmt"
	"math"
	"time"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Masked inner-product similarity — the "bioinformatics and data analytics
// applications for computing inner-product similarities" the paper's
// abstract motivates. Given a sparse feature matrix F (items × features)
// and a candidate-pair mask, the similarity of each candidate pair (i, j)
// is the dot product F_i* · F_j*, i.e. the (i, j) entry of F·Fᵀ — but only
// candidate pairs are wanted, which is exactly a masked SpGEMM:
// S = M .* (F·Fᵀ).

// SimilarityResult reports a masked similarity computation.
type SimilarityResult struct {
	// Scores holds the similarity for every candidate pair that has a
	// nonzero dot product (pattern ⊆ candidates).
	Scores *matrix.CSR[float64]
	// Pairs is the number of scored pairs.
	Pairs int
	// MaskedTime is the time inside the masked SpGEMM.
	MaskedTime time.Duration
	// TotalTime includes the transpose and normalization.
	TotalTime time.Duration
}

// DotSimilarity computes S = candidates .* (F·Fᵀ): the raw inner products
// of candidate item pairs.
func DotSimilarity(f *matrix.CSR[float64], candidates *matrix.Pattern, eng Engine) (SimilarityResult, error) {
	if candidates.NRows != f.NRows || candidates.NCols != f.NRows {
		return SimilarityResult{}, fmt.Errorf("apps: candidate mask must be %d x %d, got %dx%d",
			f.NRows, f.NRows, candidates.NRows, candidates.NCols)
	}
	start := time.Now()
	ft := matrix.Transpose(f)
	t0 := time.Now()
	s, err := eng.Mult(candidates, f, ft, semiring.Arithmetic(), false)
	mt := time.Since(t0)
	if err != nil {
		return SimilarityResult{}, fmt.Errorf("apps: similarity with %s: %w", eng.Name, err)
	}
	return SimilarityResult{
		Scores:     s,
		Pairs:      s.NNZ(),
		MaskedTime: mt,
		TotalTime:  time.Since(start),
	}, nil
}

// CosineSimilarity is DotSimilarity normalized by the item vector norms:
// cos(i, j) = (F_i·F_j)/(‖F_i‖‖F_j‖). Items with zero norm score zero.
func CosineSimilarity(f *matrix.CSR[float64], candidates *matrix.Pattern, eng Engine) (SimilarityResult, error) {
	res, err := DotSimilarity(f, candidates, eng)
	if err != nil {
		return res, err
	}
	norms := make([]float64, f.NRows)
	for i := Index(0); i < f.NRows; i++ {
		_, vals := f.Row(i)
		var s float64
		for _, v := range vals {
			s += v * v
		}
		norms[i] = math.Sqrt(s)
	}
	out := res.Scores
	for i := Index(0); i < out.NRows; i++ {
		cols, vals := out.Row(i)
		for k := range cols {
			d := norms[i] * norms[cols[k]]
			if d > 0 {
				vals[k] /= d
			} else {
				vals[k] = 0
			}
		}
	}
	res.TotalTime += 0 // normalization time folded into TotalTime by caller timing if needed
	return res, nil
}

// TopKCandidates builds a candidate mask from co-occurrence: pair (i, j)
// is a candidate iff items i and j share at least minShared features and
// i ≠ j. Computed as the pattern of F·Fᵀ thresholded — deliberately via
// plus-pair masked-by-nothing is the full product, so instead it uses the
// feature-major inverted index to enumerate co-occurring pairs per
// feature, capping the per-feature list at maxPerFeature to avoid the
// quadratic blowup of hub features (the usual candidate-generation
// heuristic in similarity search).
func TopKCandidates(f *matrix.CSR[float64], minShared int, maxPerFeature int) *matrix.Pattern {
	ft := matrix.Transpose(f)
	counts := make(map[[2]Index]int)
	for feat := Index(0); feat < ft.NRows; feat++ {
		items, _ := ft.Row(feat)
		if maxPerFeature > 0 && len(items) > maxPerFeature {
			items = items[:maxPerFeature]
		}
		for a := 0; a < len(items); a++ {
			for b := a + 1; b < len(items); b++ {
				counts[[2]Index{items[a], items[b]}]++
			}
		}
	}
	coo := &matrix.COO[float64]{NRows: f.NRows, NCols: f.NRows}
	for pair, c := range counts {
		if c >= minShared {
			coo.Row = append(coo.Row, pair[0], pair[1])
			coo.Col = append(coo.Col, pair[1], pair[0])
			coo.Val = append(coo.Val, 1, 1)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 }).Pattern()
}
