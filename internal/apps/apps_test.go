package apps

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
)

// completeGraph returns K_n (no self-loops).
func completeGraph(n Index) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i < n; i++ {
		for j := Index(0); j < n; j++ {
			if i != j {
				coo.Row = append(coo.Row, i)
				coo.Col = append(coo.Col, j)
				coo.Val = append(coo.Val, 1)
			}
		}
	}
	return matrix.NewCSRFromCOO(coo, nil)
}

// cycleGraph returns the n-cycle.
func cycleGraph(n Index) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i < n; i++ {
		j := (i + 1) % n
		coo.Row = append(coo.Row, i, j)
		coo.Col = append(coo.Col, j, i)
		coo.Val = append(coo.Val, 1, 1)
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

// pathGraph returns the n-vertex path.
func pathGraph(n Index) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i+1 < n; i++ {
		coo.Row = append(coo.Row, i, i+1)
		coo.Col = append(coo.Col, i+1, i)
		coo.Val = append(coo.Val, 1, 1)
	}
	return matrix.NewCSRFromCOO(coo, nil)
}

// starGraph returns the star with center 0 and n-1 leaves.
func starGraph(n Index) *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(1); i < n; i++ {
		coo.Row = append(coo.Row, 0, i)
		coo.Col = append(coo.Col, i, 0)
		coo.Val = append(coo.Val, 1, 1)
	}
	return matrix.NewCSRFromCOO(coo, nil)
}

func choose3(n int64) int64 { return n * (n - 1) * (n - 2) / 6 }

func TestTriangleCountKnownGraphs(t *testing.T) {
	eng := EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{Threads: 2})
	cases := []struct {
		name string
		g    *matrix.CSR[float64]
		want int64
	}{
		{"K4", completeGraph(4), choose3(4)},
		{"K10", completeGraph(10), choose3(10)},
		{"C5 (triangle-free)", cycleGraph(5), 0},
		{"path10", pathGraph(10), 0},
		{"star16", starGraph(16), 0},
	}
	for _, tc := range cases {
		got, err := TriangleCount(tc.g, eng)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Triangles != tc.want {
			t.Errorf("%s: triangles = %d, want %d", tc.name, got.Triangles, tc.want)
		}
		if got.Flops < 0 {
			t.Errorf("%s: negative flops", tc.name)
		}
	}
}

func TestTriangleCountAllEnginesAgree(t *testing.T) {
	g := grgen.RMAT(8, 8, 5)
	want := TriangleCountExact(g)
	for _, eng := range NewSession(core.Options{Threads: 2}).AllEngines() {
		got, err := TriangleCount(g, eng)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name, err)
		}
		if got.Triangles != want {
			t.Errorf("%s: triangles = %d, want %d", eng.Name, got.Triangles, want)
		}
	}
	// The strawman engine must agree too.
	straw := EnginePlainThenMask(baseline.Options{Threads: 2})
	got, err := TriangleCount(g, straw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want {
		t.Errorf("PlainThenMask: triangles = %d, want %d", got.Triangles, want)
	}
}

func TestTriangleCountERSym(t *testing.T) {
	g := grgen.ErdosRenyiSym(200, 10, 77)
	want := TriangleCountExact(g)
	eng := EngineVariant(core.Variant{Alg: core.Hash, Phase: core.TwoPhase}, core.Options{})
	got, err := TriangleCount(g, eng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want {
		t.Errorf("triangles = %d, want %d", got.Triangles, want)
	}
}

func TestKTrussKnownGraphs(t *testing.T) {
	eng := EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{Threads: 2})
	// K5 is a 5-truss: every edge supported by 3 triangles. 5-truss keeps it
	// whole; 6-truss empties it.
	k5 := completeGraph(5)
	got, res, err := KTruss(k5, 5, eng)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != k5.NNZ() {
		t.Errorf("K5 5-truss: %d edges, want %d", got.NNZ(), k5.NNZ())
	}
	if res.Iterations < 1 {
		t.Error("expected at least one iteration")
	}
	got6, _, err := KTruss(k5, 6, eng)
	if err != nil {
		t.Fatal(err)
	}
	if got6.NNZ() != 0 {
		t.Errorf("K5 6-truss: %d edges, want 0", got6.NNZ())
	}
	// A cycle has no triangles: 3-truss is empty.
	c, _, err := KTruss(cycleGraph(8), 3, eng)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Errorf("C8 3-truss: %d edges, want 0", c.NNZ())
	}
	if _, _, err := KTruss(k5, 2, eng); err == nil {
		t.Error("expected error for k < 3")
	}
}

func TestKTrussMatchesExact(t *testing.T) {
	g := grgen.RMAT(7, 10, 9)
	for _, k := range []int{3, 4, 5} {
		want := KTrussExact(g, k)
		for _, engName := range []string{"MSA-1P", "Hash-2P", "MCA-1P", "Inner-1P"} {
			v, err := core.VariantByName(engName)
			if err != nil {
				t.Fatal(err)
			}
			eng := EngineVariant(v, core.Options{Threads: 2})
			got, _, err := KTruss(g, k, eng)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.EqualPatterns(got.Pattern(), want.Pattern()) {
				t.Errorf("k=%d %s: truss pattern differs from exact (%d vs %d edges)",
					k, engName, got.NNZ(), want.NNZ())
			}
		}
	}
}

func bcClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func TestBetweennessKnownGraphs(t *testing.T) {
	eng := EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{Threads: 2})
	// Path graph P5, all sources: center vertex has highest centrality.
	g := pathGraph(5)
	sources := []Index{0, 1, 2, 3, 4}
	res, err := BetweennessCentrality(g, sources, eng)
	if err != nil {
		t.Fatal(err)
	}
	want := BrandesExact(g, sources)
	if !bcClose(res.Scores, want) {
		t.Errorf("P5 scores = %v, want %v", res.Scores, want)
	}
	// Known closed form for a path: bc(v) of P5 with all sources (unnormalized,
	// directed sum) is 2*(i*(n-1-i)) for vertex i.
	for i := 0; i < 5; i++ {
		exp := 2 * float64(i*(4-i))
		if math.Abs(res.Scores[i]-exp) > 1e-9 {
			t.Errorf("P5 vertex %d: %v, want %v", i, res.Scores[i], exp)
		}
	}
	// Star graph: center lies on all leaf-to-leaf paths.
	st := starGraph(8)
	all := make([]Index, 8)
	for i := range all {
		all[i] = Index(i)
	}
	res, err = BetweennessCentrality(st, all, eng)
	if err != nil {
		t.Fatal(err)
	}
	want = BrandesExact(st, all)
	if !bcClose(res.Scores, want) {
		t.Errorf("star scores = %v, want %v", res.Scores, want)
	}
	if res.Scores[0] != float64(7*6) {
		t.Errorf("star center = %v, want 42", res.Scores[0])
	}
}

func TestBetweennessMatchesBrandesOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		g := grgen.ErdosRenyiSym(60, 4, uint64(100+trial))
		var sources []Index
		for s := 0; s < 8; s++ {
			sources = append(sources, Index(r.Intn(60)))
		}
		want := BrandesExact(g, sources)
		for _, engName := range []string{"MSA-1P", "Hash-1P", "MSA-2P", "Hash-2P", "Heap-1P"} {
			v, err := core.VariantByName(engName)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BetweennessCentrality(g, sources, EngineVariant(v, core.Options{Threads: 2}))
			if err != nil {
				t.Fatal(err)
			}
			if !bcClose(res.Scores, want) {
				t.Errorf("trial %d %s: BC scores differ from Brandes", trial, engName)
			}
		}
		// SS:SAXPY baseline supports complement; verify it too.
		res, err := BetweennessCentrality(g, sources, EngineSSSaxpy(baseline.Options{Threads: 2}))
		if err != nil {
			t.Fatal(err)
		}
		if !bcClose(res.Scores, want) {
			t.Errorf("trial %d SS:SAXPY: BC scores differ from Brandes", trial)
		}
	}
}

func TestBetweennessRejectsComplementIncapable(t *testing.T) {
	g := pathGraph(4)
	if _, err := BetweennessCentrality(g, []Index{0}, EngineVariant(core.Variant{Alg: core.MCA, Phase: core.OnePhase}, core.Options{})); err == nil {
		t.Error("expected MCA to be rejected for BC")
	}
	if _, err := BetweennessCentrality(g, []Index{0}, EngineSSDot(baseline.Options{})); err == nil {
		t.Error("expected SS:DOT to be rejected for BC")
	}
}

func TestBetweennessEdgeCases(t *testing.T) {
	eng := EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{})
	g := pathGraph(4)
	// No sources.
	res, err := BetweennessCentrality(g, nil, eng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Scores {
		if v != 0 {
			t.Error("empty batch must give zero scores")
		}
	}
	// Out-of-range source.
	if _, err := BetweennessCentrality(g, []Index{99}, eng); err == nil {
		t.Error("expected error for out-of-range source")
	}
	// Disconnected graph: BFS from an isolated vertex terminates immediately.
	iso := matrix.NewEmptyCSR[float64](5, 5)
	res, err = BetweennessCentrality(iso, []Index{2}, eng)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Scores {
		if v != 0 {
			t.Error("isolated graph must give zero scores")
		}
	}
	// Duplicate sources are processed independently (contributions double).
	dup, err := BetweennessCentrality(g, []Index{1, 1}, eng)
	if err != nil {
		t.Fatal(err)
	}
	single := BrandesExact(g, []Index{1})
	for i := range single {
		single[i] *= 2
	}
	if !bcClose(dup.Scores, single) {
		t.Errorf("duplicate sources: %v, want %v", dup.Scores, single)
	}
}

func TestTCMetrics(t *testing.T) {
	r := TCResult{Flops: 1e9, MaskedTime: 1e9} // 1 second
	if g := r.GFLOPS(); math.Abs(g-2.0) > 1e-12 {
		t.Errorf("GFLOPS = %v, want 2", g)
	}
	if (TCResult{}).GFLOPS() != 0 {
		t.Error("zero-time GFLOPS must be 0")
	}
	k := KTrussResult{Flops: 5e8, MaskedTime: 1e9}
	if g := k.GFLOPS(); math.Abs(g-1.0) > 1e-12 {
		t.Errorf("ktruss GFLOPS = %v, want 1", g)
	}
	b := BCResult{BatchSize: 10, Edges: 1e6, TotalTime: 1e9}
	if m := b.MTEPS(); math.Abs(m-10.0) > 1e-12 {
		t.Errorf("MTEPS = %v, want 10", m)
	}
}
