// Package apps implements the paper's three evaluation benchmarks (§7-§8)
// on top of masked SpGEMM: Triangle Counting, k-truss, and batched Brandes
// Betweenness Centrality. Each application is written against the Engine
// abstraction so it can run with any of the paper's 12 algorithm variants
// or with the SuiteSparse:GraphBLAS-style baselines, exactly as the paper
// swaps the Masked SpGEMM implementation inside fixed GraphBLAS-style
// application code.
package apps

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/planner"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Engine is one masked SpGEMM implementation under test.
type Engine struct {
	// Name is the label used in result tables ("MSA-1P", "SS:SAXPY", ...).
	Name string
	// Mult computes M .* (A·B) (or the complement form) over sr.
	Mult func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error)
}

// EngineVariant wraps one of the paper's algorithm variants. With
// opt.Auto set, the pinned variant is ignored and the call is routed
// through the adaptive planner instead (see EngineAuto).
func EngineVariant(v core.Variant, opt core.Options) Engine {
	if opt.Auto {
		return EngineAuto(opt)
	}
	return Engine{
		Name: v.Name(),
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			return core.MaskedSpGEMM(v, m, a, b, sr, o)
		},
	}
}

// EngineAuto is the planner-backed engine: every masked product is analyzed
// (or recalled from the engine's plan cache — iterative applications like
// BFS, BC, MCL and k-truss re-multiply against evolving masks over a static
// graph) and executed with the variant, or per-row-block variant mix, the
// §8 cost model selects.
func EngineAuto(opt core.Options) Engine {
	cache := planner.NewCache()
	return Engine{
		Name: "Auto",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			p := cache.Analyze(m, a.Pattern(), b.Pattern(), o)
			return planner.Execute(p, m, a, b, sr, o, nil)
		},
	}
}

// EngineSSDot wraps the SS:DOT baseline. It does not support complemented
// masks (the paper excludes SS:DOT from the BC comparison).
func EngineSSDot(opt baseline.Options) Engine {
	return Engine{
		Name: "SS:DOT",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			if complement {
				return nil, fmt.Errorf("apps: SS:DOT does not support complemented masks")
			}
			return baseline.SSDot(m, a, b, sr, opt), nil
		},
	}
}

// EngineSSSaxpy wraps the SS:SAXPY baseline.
func EngineSSSaxpy(opt baseline.Options) Engine {
	return Engine{
		Name: "SS:SAXPY",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			return baseline.SSSaxpy(m, a, b, sr, o), nil
		},
	}
}

// EnginePlainThenMask wraps the unmasked-multiply-then-filter strawman of
// Figure 1.
func EnginePlainThenMask(opt baseline.Options) Engine {
	return Engine{
		Name: "PlainThenMask",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			return baseline.PlainThenMask(m, a, b, sr, o), nil
		},
	}
}

// AllEngines returns the paper's 14 schemes (§8): the 12 proposed variants
// plus the two SuiteSparse-style baselines.
func AllEngines(threads int) []Engine {
	copt := core.Options{Threads: threads}
	bopt := baseline.Options{Threads: threads}
	var out []Engine
	for _, v := range core.AllVariants() {
		out = append(out, EngineVariant(v, copt))
	}
	out = append(out, EngineSSDot(bopt), EngineSSSaxpy(bopt))
	return out
}

// EngineByName resolves a scheme label: "Auto", a variant name such as
// "MSA-1P", or a baseline ("SS:DOT", "SS:SAXPY").
func EngineByName(name string, threads int) (Engine, error) {
	switch name {
	case "Auto", "auto":
		return EngineAuto(core.Options{Threads: threads}), nil
	case "SS:DOT":
		return EngineSSDot(baseline.Options{Threads: threads}), nil
	case "SS:SAXPY":
		return EngineSSSaxpy(baseline.Options{Threads: threads}), nil
	}
	v, err := core.VariantByName(name)
	if err != nil {
		return Engine{}, err
	}
	return EngineVariant(v, core.Options{Threads: threads}), nil
}
