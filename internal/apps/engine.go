// Package apps implements the paper's three evaluation benchmarks (§7-§8)
// on top of masked SpGEMM: Triangle Counting, k-truss, and batched Brandes
// Betweenness Centrality. Each application is written against the Engine
// abstraction so it can run with any of the paper's 12 algorithm variants
// or with the SuiteSparse:GraphBLAS-style baselines, exactly as the paper
// swaps the Masked SpGEMM implementation inside fixed GraphBLAS-style
// application code.
//
// Engines are constructed from a Session, which scopes the state an engine
// sweep shares: one set of execution options (thread budget, context,
// workspace arena) and one plan cache, so a 14-engine comparison or an
// iterative application analyzes each product once instead of once per
// engine.
package apps

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/planner"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Engine is one masked SpGEMM implementation under test.
type Engine struct {
	// Name is the label used in result tables ("MSA-1P", "SS:SAXPY", ...).
	Name string
	// Mult computes M .* (A·B) (or the complement form) over sr.
	Mult func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error)
	// MultRep, if non-nil, is Mult carrying a mask-representation hint from
	// the application (k-truss and multi-source BFS know their mask's
	// density without a scan). The hint only applies when the engine's
	// session has not pinned a representation of its own, and kernels that
	// cannot exploit it demote it. Only the fixed-variant engines take
	// hints: the Auto engine's planner measures per-block density itself
	// (better information than the coarse hint), and the baselines have no
	// representation choice, so both leave MultRep nil.
	MultRep func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool, rep core.MaskRep) (*matrix.CSR[float64], error)
}

// mult runs the engine with a mask-representation hint, falling back to the
// plain path when the engine takes no hints or none is offered.
func (e Engine) mult(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool, rep core.MaskRep) (*matrix.CSR[float64], error) {
	if e.MultRep != nil && rep != core.RepAuto {
		return e.MultRep(m, a, b, sr, complement, rep)
	}
	return e.Mult(m, a, b, sr, complement)
}

// Session scopes engine construction. Every engine built from one session
// runs with the session's options (thread budget, cancellation context,
// pooled workspaces — a single Options value governs the paper's variants
// and the baselines alike, since baseline.Options is the same type) and
// the Auto engines share the session's plan cache, so an engine sweep over
// the same operands analyzes each product once, not once per engine.
type Session struct {
	// Opt is the execution options every engine of the session runs with.
	Opt core.Options
	// Cache is the session's plan cache, consulted by every Auto engine.
	Cache *planner.Cache
}

// NewSession returns a session running with the given options and a fresh
// plan cache.
func NewSession(opt core.Options) *Session {
	return &Session{Opt: opt, Cache: planner.NewCache()}
}

// WithOptions returns a derived session that runs with opt but shares the
// receiver's plan cache — the way a per-operation context or thread
// override is threaded into engine construction without losing cached
// plans.
func (s *Session) WithOptions(opt core.Options) *Session {
	return &Session{Opt: opt, Cache: s.Cache}
}

// EngineVariant wraps one of the paper's algorithm variants. With
// s.Opt.Auto set, the pinned variant is ignored and the call is routed
// through the adaptive planner instead (see EngineAuto).
func (s *Session) EngineVariant(v core.Variant) Engine {
	if s.Opt.Auto {
		return s.EngineAuto()
	}
	opt := s.Opt
	return Engine{
		Name: v.Name(),
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			return core.MaskedSpGEMM(v, m, a, b, sr, o)
		},
		MultRep: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool, rep core.MaskRep) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			if o.MaskRep == core.RepAuto { // a session pin wins over the app's hint
				o.MaskRep = core.AdoptMaskRepHint(v.Alg, rep, complement)
			}
			return core.MaskedSpGEMM(v, m, a, b, sr, o)
		},
	}
}

// EngineAuto is the planner-backed engine: every masked product is analyzed
// (or recalled from the session's plan cache — iterative applications like
// BFS, BC, MCL and k-truss re-multiply against evolving masks over a static
// graph) and executed with the variant, or per-row-block variant mix, the
// §8 cost model selects.
func (s *Session) EngineAuto() Engine {
	opt, cache := s.Opt, s.Cache
	return Engine{
		Name: "Auto",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			p := cache.Analyze(m, a.Pattern(), b.Pattern(), o)
			return planner.Execute(p, m, a, b, sr, o, nil)
		},
	}
}

// EngineSSDot wraps the SS:DOT baseline. It does not support complemented
// masks (the paper excludes SS:DOT from the BC comparison).
func (s *Session) EngineSSDot() Engine {
	opt := s.Opt
	return Engine{
		Name: "SS:DOT",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			if complement {
				return nil, fmt.Errorf("apps: SS:DOT does not support complemented masks")
			}
			c := baseline.SSDot(m, a, b, sr, opt)
			if err := opt.Err(); err != nil {
				return nil, err // cancelled mid-loop: the partial result is garbage
			}
			return c, nil
		},
	}
}

// EngineSSSaxpy wraps the SS:SAXPY baseline.
func (s *Session) EngineSSSaxpy() Engine {
	opt := s.Opt
	return Engine{
		Name: "SS:SAXPY",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			c := baseline.SSSaxpy(m, a, b, sr, o)
			if err := o.Err(); err != nil {
				return nil, err
			}
			return c, nil
		},
	}
}

// EnginePlainThenMask wraps the unmasked-multiply-then-filter strawman of
// Figure 1.
func (s *Session) EnginePlainThenMask() Engine {
	opt := s.Opt
	return Engine{
		Name: "PlainThenMask",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			c := baseline.PlainThenMask(m, a, b, sr, o)
			if err := o.Err(); err != nil {
				return nil, err
			}
			return c, nil
		},
	}
}

// AllEngines returns the paper's 14 schemes (§8): the 12 proposed variants
// plus the two SuiteSparse-style baselines, all sharing the session's
// options and plan cache.
func (s *Session) AllEngines() []Engine {
	var out []Engine
	for _, v := range core.AllVariants() {
		out = append(out, s.EngineVariant(v))
	}
	return append(out, s.EngineSSDot(), s.EngineSSSaxpy())
}

// EngineByName resolves a scheme label: "Auto", a variant name such as
// "MSA-1P", or a baseline ("SS:DOT", "SS:SAXPY"). Repeated resolutions of
// "Auto" from one session share the session's plan cache.
func (s *Session) EngineByName(name string) (Engine, error) {
	switch name {
	case "Auto", "auto":
		return s.EngineAuto(), nil
	case "SS:DOT":
		return s.EngineSSDot(), nil
	case "SS:SAXPY":
		return s.EngineSSSaxpy(), nil
	}
	v, err := core.VariantByName(name)
	if err != nil {
		return Engine{}, err
	}
	return s.EngineVariant(v), nil
}

// EngineVariant constructs a variant engine with a one-off session.
//
// Deprecated: build engines from a Session so iterative Auto callers share
// one plan cache; this wrapper creates a fresh cache per engine.
func EngineVariant(v core.Variant, opt core.Options) Engine {
	return NewSession(opt).EngineVariant(v)
}

// EngineAuto constructs a planner-backed engine with a one-off session.
//
// Deprecated: build engines from a Session so iterative Auto callers share
// one plan cache; this wrapper creates a fresh cache per engine.
func EngineAuto(opt core.Options) Engine {
	return NewSession(opt).EngineAuto()
}

// EngineSSDot constructs the SS:DOT baseline engine with a one-off session.
//
// Deprecated: build engines from a Session.
func EngineSSDot(opt baseline.Options) Engine {
	return NewSession(opt).EngineSSDot()
}

// EngineSSSaxpy constructs the SS:SAXPY baseline engine with a one-off
// session.
//
// Deprecated: build engines from a Session.
func EngineSSSaxpy(opt baseline.Options) Engine {
	return NewSession(opt).EngineSSSaxpy()
}

// EnginePlainThenMask constructs the Figure-1 strawman engine with a
// one-off session.
//
// Deprecated: build engines from a Session.
func EnginePlainThenMask(opt baseline.Options) Engine {
	return NewSession(opt).EnginePlainThenMask()
}
