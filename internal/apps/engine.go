// Package apps implements the paper's three evaluation benchmarks (§7-§8)
// on top of masked SpGEMM: Triangle Counting, k-truss, and batched Brandes
// Betweenness Centrality. Each application is written against the Engine
// abstraction so it can run with any of the paper's 12 algorithm variants
// or with the SuiteSparse:GraphBLAS-style baselines, exactly as the paper
// swaps the Masked SpGEMM implementation inside fixed GraphBLAS-style
// application code.
package apps

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Index mirrors matrix.Index.
type Index = matrix.Index

// Engine is one masked SpGEMM implementation under test.
type Engine struct {
	// Name is the label used in result tables ("MSA-1P", "SS:SAXPY", ...).
	Name string
	// Mult computes M .* (A·B) (or the complement form) over sr.
	Mult func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error)
}

// EngineVariant wraps one of the paper's algorithm variants.
func EngineVariant(v core.Variant, opt core.Options) Engine {
	return Engine{
		Name: v.Name(),
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			return core.MaskedSpGEMM(v, m, a, b, sr, o)
		},
	}
}

// EngineSSDot wraps the SS:DOT baseline. It does not support complemented
// masks (the paper excludes SS:DOT from the BC comparison).
func EngineSSDot(opt baseline.Options) Engine {
	return Engine{
		Name: "SS:DOT",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			if complement {
				return nil, fmt.Errorf("apps: SS:DOT does not support complemented masks")
			}
			return baseline.SSDot(m, a, b, sr, opt), nil
		},
	}
}

// EngineSSSaxpy wraps the SS:SAXPY baseline.
func EngineSSSaxpy(opt baseline.Options) Engine {
	return Engine{
		Name: "SS:SAXPY",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			return baseline.SSSaxpy(m, a, b, sr, o), nil
		},
	}
}

// EnginePlainThenMask wraps the unmasked-multiply-then-filter strawman of
// Figure 1.
func EnginePlainThenMask(opt baseline.Options) Engine {
	return Engine{
		Name: "PlainThenMask",
		Mult: func(m *matrix.Pattern, a, b *matrix.CSR[float64], sr semiring.Semiring[float64], complement bool) (*matrix.CSR[float64], error) {
			o := opt
			o.Complement = complement
			return baseline.PlainThenMask(m, a, b, sr, o), nil
		},
	}
}

// AllEngines returns the paper's 14 schemes (§8): the 12 proposed variants
// plus the two SuiteSparse-style baselines.
func AllEngines(threads int) []Engine {
	copt := core.Options{Threads: threads}
	bopt := baseline.Options{Threads: threads}
	var out []Engine
	for _, v := range core.AllVariants() {
		out = append(out, EngineVariant(v, copt))
	}
	out = append(out, EngineSSDot(bopt), EngineSSSaxpy(bopt))
	return out
}
