package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Streaming graph applications: the incremental counterparts of
// TriangleCount and KTruss for graphs that evolve under an edge stream.
// Both maintain their masked product C = M .* (A·B) through a
// core.DeltaProduct, so each batch recomputes only the dirty-row frontier
// — the rows whose mask/A content changed plus the rows whose A columns
// hit changed rows of B — and splices the recomputed rows into the cached
// output. Because every kernel produces bit-identical rows for identical
// inputs, the maintained results equal a from-scratch run on the current
// graph after every batch (stream_test.go checks each prefix against the
// exact references).

// StreamEdge is one undirected edge mutation in a graph stream: insert
// edge {U, V} (or delete it when Delete is set). Self-loops are ignored;
// duplicate inserts and deletes of absent edges are no-ops.
type StreamEdge struct {
	// U and V are the edge's endpoints.
	U, V Index
	// Delete removes the edge instead of inserting it.
	Delete bool
}

// symmetrize expands undirected edge mutations into the symmetric update
// pairs the adjacency overlays consume.
func symmetrize(edges []StreamEdge) []matrix.Update[float64] {
	batch := make([]matrix.Update[float64], 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		batch = append(batch,
			matrix.Update[float64]{Row: e.U, Col: e.V, Val: 1, Delete: e.Delete},
			matrix.Update[float64]{Row: e.V, Col: e.U, Val: 1, Delete: e.Delete})
	}
	return batch
}

// TCStreamStats counts the work a TCStream has done.
type TCStreamStats struct {
	// Batches is the number of non-empty ApplyEdges calls.
	Batches int64
	// RowsRecomputed is the total number of output rows recomputed across
	// all refreshes (the full row count once, then frontier-sized).
	RowsRecomputed int64
}

// TCStream maintains the triangle count of an undirected graph under an
// edge stream. It keeps the strictly lower triangular adjacency L as a
// delta overlay and the masked product C = L .* (L·L) (plus-pair)
// incrementally: each batch recomputes only the frontier rows, so a small
// batch costs a frontier-sized sub-product instead of a full multiply.
// Unlike TriangleCount it does not relabel vertices by degree — the count
// is permutation-invariant, and a stable labeling is what makes streamed
// updates addressable. Not safe for concurrent use.
type TCStream struct {
	l     *matrix.DeltaCSR[float64]
	p     *core.DeltaProduct[float64]
	eng   Engine
	count int64
	stats TCStreamStats
}

// TriangleCountStream starts incremental triangle counting on the
// undirected graph g (symmetric adjacency; self-loops ignored) using eng
// for the masked products. The constructor computes the initial full
// product; ApplyEdges then maintains the count incrementally.
func TriangleCountStream(g *matrix.CSR[float64], eng Engine) (*TCStream, error) {
	if g.NRows != g.NCols {
		return nil, fmt.Errorf("apps: triangle stream wants a square adjacency, got %dx%d", g.NRows, g.NCols)
	}
	l := matrix.Tril(g)
	for i := range l.Val {
		l.Val[i] = 1
	}
	d, err := matrix.NewDeltaCSR(l)
	if err != nil {
		return nil, err
	}
	st := &TCStream{l: d, p: core.NewDeltaProduct(d, d, d), eng: eng}
	if _, err := st.refresh(); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *TCStream) mult(msub *matrix.Pattern, asub, b *matrix.CSR[float64]) (*matrix.CSR[float64], error) {
	return st.eng.Mult(msub, asub, b, semiring.PlusPairF(), false)
}

func (st *TCStream) refresh() (int64, error) {
	c, rows, err := st.p.Refresh(st.mult)
	if err != nil {
		return 0, fmt.Errorf("apps: triangle stream with %s: %w", st.eng.Name, err)
	}
	st.stats.RowsRecomputed += int64(len(rows))
	st.count = int64(matrix.Sum(c))
	return st.count, nil
}

// ApplyEdges applies one batch of undirected edge mutations and returns
// the triangle count of the updated graph. Each edge {u, v} maps to the
// single L entry (max(u,v), min(u,v)). A batch with an out-of-range
// vertex is rejected whole, mutating nothing.
func (st *TCStream) ApplyEdges(edges []StreamEdge) (int64, error) {
	batch := make([]matrix.Update[float64], 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		r, c := e.U, e.V
		if r < c {
			r, c = c, r
		}
		batch = append(batch, matrix.Update[float64]{Row: r, Col: c, Val: 1, Delete: e.Delete})
	}
	if len(batch) == 0 {
		return st.count, nil
	}
	st.stats.Batches++
	if err := st.p.Apply(core.DeltaAll, batch); err != nil {
		return 0, err
	}
	return st.refresh()
}

// Count returns the triangle count of the current graph.
func (st *TCStream) Count() int64 { return st.count }

// Stats returns cumulative work counters.
func (st *TCStream) Stats() TCStreamStats { return st.stats }

// Compact folds the overlay's pending logs into a fresh base; content is
// unchanged. Call it periodically on long streams (see PERFORMANCE.md).
func (st *TCStream) Compact() { st.p.Compact() }

// KTrussStreamStats counts the work a KTrussStream has done.
type KTrussStreamStats struct {
	// Batches is the number of non-empty ApplyEdges calls.
	Batches int64
	// PeelRounds is the total number of peel iterations (rounds that
	// deleted at least one under-supported edge).
	PeelRounds int64
	// RowsRecomputed is the total number of support-matrix rows recomputed
	// across all refreshes of both maintained products.
	RowsRecomputed int64
	// FullPeels counts peels restarted from the full graph. Insertion
	// batches force one (a new edge can revive edges outside the current
	// truss); deletion-only batches never do — the truss only shrinks, so
	// the maintained truss product peels forward from the deleted edges.
	FullPeels int64
}

// KTrussStream maintains the k-truss of an undirected graph under an edge
// stream. It keeps two incrementally maintained support products:
// S_G = G .* (G·G) over the full evolving graph, and S_T over the current
// truss subgraph, both on the plus-pair semiring. A deletion-only batch
// peels the truss product forward from the deleted edges (the k-truss is
// monotone under edge removal, so T(G') equals the truss of T ∩ G');
// a batch with insertions restarts the peel from the full graph, seeded
// with the maintained S_G so even the restart skips the from-scratch
// support multiply. Not safe for concurrent use.
type KTrussStream struct {
	k       int
	support float64
	eng     Engine
	g       *matrix.DeltaCSR[float64]
	gProd   *core.DeltaProduct[float64]
	t       *matrix.DeltaCSR[float64]
	tProd   *core.DeltaProduct[float64]
	truss   *matrix.CSR[float64]
	stats   KTrussStreamStats
}

// NewKTrussStream starts incremental k-truss maintenance on the
// undirected graph g (symmetric adjacency; self-loops dropped) using eng
// for the masked products. k must be at least 3. The constructor runs the
// initial full support multiply and peel; ApplyEdges then maintains the
// truss incrementally.
func NewKTrussStream(g *matrix.CSR[float64], k int, eng Engine) (*KTrussStream, error) {
	if k < 3 {
		return nil, fmt.Errorf("apps: k-truss stream requires k >= 3, got %d", k)
	}
	if g.NRows != g.NCols {
		return nil, fmt.Errorf("apps: k-truss stream wants a square adjacency, got %dx%d", g.NRows, g.NCols)
	}
	norm := matrix.FilterEntries(g, func(i, j Index, _ float64) bool { return i != j })
	for i := range norm.Val {
		norm.Val[i] = 1
	}
	d, err := matrix.NewDeltaCSR(norm)
	if err != nil {
		return nil, err
	}
	st := &KTrussStream{
		k: k, support: float64(k - 2), eng: eng,
		g: d, gProd: core.NewDeltaProduct(d, d, d),
	}
	s, rows, err := st.gProd.Refresh(st.mult)
	if err != nil {
		return nil, fmt.Errorf("apps: k-truss stream with %s: %w", eng.Name, err)
	}
	st.stats.RowsRecomputed += int64(len(rows))
	if err := st.seedPeelFromGraph(s); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *KTrussStream) mult(msub *matrix.Pattern, asub, b *matrix.CSR[float64]) (*matrix.CSR[float64], error) {
	// The mask is an adjacency (sub)graph, so its density is known without
	// a scan — same representation hint the batch KTruss passes.
	hint := core.HintMaskRep(int64(len(msub.Col)), int64(msub.NRows))
	return st.eng.mult(msub, asub, b, semiring.PlusPairF(), false, hint)
}

// seedPeelFromGraph rebuilds the truss product over the current full graph,
// seeded with s (the maintained S_G, valid for the graph's current
// content), and peels it to the fixed point.
func (st *KTrussStream) seedPeelFromGraph(s *matrix.CSR[float64]) error {
	cur := st.g.Current()
	t, err := matrix.NewDeltaCSR(cur)
	if err != nil {
		return err
	}
	st.t = t
	st.tProd = core.NewDeltaProductSeeded(t, t, t, s)
	all := make([]Index, cur.NRows)
	for i := range all {
		all[i] = Index(i)
	}
	return st.peel(all)
}

// underSupported scans the given rows of the truss candidate and collects
// deletion updates (both orientations) for every edge whose support in s
// is below k-2. Edges absent from s have zero support.
func (st *KTrussStream) underSupported(graph, s *matrix.CSR[float64], scan []Index) []matrix.Update[float64] {
	var drops []matrix.Update[float64]
	for _, i := range scan {
		gc, _ := graph.Row(i)
		sc, sv := s.Row(i)
		k := 0
		for _, j := range gc {
			for k < len(sc) && sc[k] < j {
				k++
			}
			sup := 0.0
			if k < len(sc) && sc[k] == j {
				sup = sv[k]
			}
			if sup < st.support {
				drops = append(drops,
					matrix.Update[float64]{Row: i, Col: j, Delete: true},
					matrix.Update[float64]{Row: j, Col: i, Delete: true})
			}
		}
	}
	return drops
}

// peel deletes under-supported edges round by round until the fixed
// point, scanning only the given rows in the first round and only the
// rows each refresh recomputed afterwards (support can only change where
// rows were recomputed).
func (st *KTrussStream) peel(scan []Index) error {
	for len(scan) > 0 {
		drops := st.underSupported(st.t.Current(), st.tProd.Output(), scan)
		if len(drops) == 0 {
			break
		}
		st.stats.PeelRounds++
		if err := st.tProd.Apply(core.DeltaAll, drops); err != nil {
			return err
		}
		_, frontier, err := st.tProd.Refresh(st.mult)
		if err != nil {
			return fmt.Errorf("apps: k-truss stream with %s: %w", st.eng.Name, err)
		}
		st.stats.RowsRecomputed += int64(len(frontier))
		scan = frontier
	}
	st.truss = st.t.Current()
	return nil
}

// ApplyEdges applies one batch of undirected edge mutations and returns
// the k-truss of the updated graph (callers must not mutate it). A batch
// with an out-of-range vertex is rejected whole, mutating nothing.
func (st *KTrussStream) ApplyEdges(edges []StreamEdge) (*matrix.CSR[float64], error) {
	batch := symmetrize(edges)
	if len(batch) == 0 {
		return st.truss, nil
	}
	st.stats.Batches++
	insert := false
	for _, u := range batch {
		if !u.Delete {
			insert = true
			break
		}
	}
	if err := st.gProd.Apply(core.DeltaAll, batch); err != nil {
		return nil, err
	}
	s, rows, err := st.gProd.Refresh(st.mult)
	if err != nil {
		return nil, fmt.Errorf("apps: k-truss stream with %s: %w", st.eng.Name, err)
	}
	st.stats.RowsRecomputed += int64(len(rows))
	if insert {
		st.stats.FullPeels++
		if err := st.seedPeelFromGraph(s); err != nil {
			return nil, err
		}
		return st.truss, nil
	}
	// Deletion-only: peel the maintained truss product forward. Deletes of
	// edges outside the current truss are no-ops there, but still dirty
	// their rows, which the refresh then recomputes cheaply.
	if err := st.tProd.Apply(core.DeltaAll, batch); err != nil {
		return nil, err
	}
	_, tf, err := st.tProd.Refresh(st.mult)
	if err != nil {
		return nil, fmt.Errorf("apps: k-truss stream with %s: %w", st.eng.Name, err)
	}
	st.stats.RowsRecomputed += int64(len(tf))
	if err := st.peel(tf); err != nil {
		return nil, err
	}
	return st.truss, nil
}

// Truss returns the current k-truss (callers must not mutate it).
func (st *KTrussStream) Truss() *matrix.CSR[float64] { return st.truss }

// Stats returns cumulative work counters.
func (st *KTrussStream) Stats() KTrussStreamStats { return st.stats }

// Compact folds both overlays' pending logs into fresh bases; content is
// unchanged. Call it periodically on long streams (see PERFORMANCE.md).
func (st *KTrussStream) Compact() {
	st.gProd.Compact()
	st.tProd.Compact()
}
