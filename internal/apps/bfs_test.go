package apps

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
)

func TestBFSPathGraph(t *testing.T) {
	g := pathGraph(6)
	res, err := BFS(g, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if res.Level[v] != int32(v) {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v], v)
		}
	}
	if res.Depth < 5 {
		t.Fatalf("depth = %d", res.Depth)
	}
}

func TestBFSMatchesExactOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		g := grgen.ErdosRenyiSym(matrix.Index(50+r.Intn(200)), 3, uint64(trial+1))
		src := matrix.Index(r.Intn(int(g.NRows)))
		res, err := BFS(g, src, core.Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := BFSExact(g, src)
		for v := range want {
			if res.Level[v] != want[v] {
				t.Fatalf("trial %d: level[%d] = %d, want %d", trial, v, res.Level[v], want[v])
			}
		}
	}
}

func TestBFSDirectionSwitch(t *testing.T) {
	// A star graph forces a pull step: after visiting the hub, the frontier
	// is the hub (degree n-1) and the unvisited candidate set is n-2 leaves;
	// push flops = n-1 per leaf reachability... construct a denser graph to
	// force a dense frontier against a small complement.
	g := grgen.RMAT(9, 32, 13)
	res, err := BFS(g, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PushSteps+res.PullSteps != res.Depth {
		t.Fatalf("steps %d+%d != depth %d", res.PushSteps, res.PullSteps, res.Depth)
	}
	if res.PushSteps == 0 {
		t.Error("expected at least one push step (singleton start frontier)")
	}
	want := BFSExact(g, 0)
	for v := range want {
		if res.Level[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v], want[v])
		}
	}
}

func TestBFSErrors(t *testing.T) {
	g := pathGraph(4)
	if _, err := BFS(g, -1, core.Options{}); err == nil {
		t.Fatal("negative source")
	}
	if _, err := BFS(g, 4, core.Options{}); err == nil {
		t.Fatal("out of range source")
	}
}

func TestBFSIsolatedVertex(t *testing.T) {
	g := matrix.NewEmptyCSR[float64](5, 5)
	res, err := BFS(g, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range res.Level {
		want := int32(-1)
		if v == 2 {
			want = 0
		}
		if l != want {
			t.Fatalf("level[%d] = %d, want %d", v, l, want)
		}
	}
}

func TestMultiSourceBFS(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	g := grgen.ErdosRenyiSym(150, 4, 17)
	sources := []Index{0, 7, 70, matrix.Index(r.Intn(150))}
	for _, name := range []string{"MSA-1P", "Hash-2P", "Heap-1P"} {
		v, err := core.VariantByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MultiSourceBFS(g, sources, EngineVariant(v, core.Options{Threads: 2}))
		if err != nil {
			t.Fatal(err)
		}
		for s, src := range sources {
			want := BFSExact(g, src)
			for vtx := range want {
				if res.Levels[s][vtx] != want[vtx] {
					t.Fatalf("%s source %d: level[%d] = %d, want %d",
						name, src, vtx, res.Levels[s][vtx], want[vtx])
				}
			}
		}
		if res.Depth < 1 {
			t.Fatal("depth")
		}
	}
}

func TestMultiSourceBFSEdgeCases(t *testing.T) {
	g := pathGraph(4)
	eng := EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{})
	res, err := MultiSourceBFS(g, nil, eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 0 || len(res.Levels) != 0 {
		t.Fatal("empty batch")
	}
	if _, err := MultiSourceBFS(g, []Index{9}, eng); err == nil {
		t.Fatal("out of range source")
	}
	// MCA cannot do complemented masks, so it must fail for BFS.
	if _, err := MultiSourceBFS(g, []Index{0}, EngineVariant(core.Variant{Alg: core.MCA, Phase: core.OnePhase}, core.Options{})); err == nil {
		t.Fatal("MCA must be rejected")
	}
}
