package apps

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// TestSessionEnginesSharePlanCache: every Auto engine resolved from one
// session consults the same plan cache, so an engine sweep analyzes each
// product once — not once per engine (the pre-session regression).
func TestSessionEnginesSharePlanCache(t *testing.T) {
	g := grgen.RMAT(8, 8, 5)
	l := matrix.Tril(g)
	s := NewSession(core.Options{Threads: 1})
	e1, err := s.EngineByName("Auto")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.EngineByName("Auto")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e1.Mult(l.Pattern(), l, l, semiring.PlusPairF(), false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Mult(l.Pattern(), l, l, semiring.PlusPairF(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want, func(a, b float64) bool { return a == b }) {
		t.Fatal("engines from one session disagree")
	}
	if st := s.Cache.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("plan cache: got %d hits / %d misses, want 1/1 (shared cache)", st.Hits, st.Misses)
	}

	// AllEngines-style sweeps under Auto share the cache, too.
	s2 := NewSession(core.Options{Threads: 1, Auto: true})
	for i, eng := range s2.AllEngines()[:12] { // the 12 variant slots, all Auto here
		if _, err := eng.Mult(l.Pattern(), l, l, semiring.PlusPairF(), false); err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
	if st := s2.Cache.Stats(); st.Misses != 1 || st.Hits != 11 {
		t.Errorf("12-engine Auto sweep: got %d hits / %d misses, want 11/1", st.Hits, st.Misses)
	}
}

// TestSessionEngineContext: a session constructed with a cancelled context
// refuses work with context.Canceled, for variants and baselines alike.
func TestSessionEngineContext(t *testing.T) {
	g := grgen.RMAT(8, 8, 5)
	l := matrix.Tril(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession(core.Options{Threads: 1, Ctx: ctx})
	for _, eng := range []Engine{
		s.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}),
		s.EngineAuto(),
		s.EngineSSSaxpy(),
	} {
		if _, err := eng.Mult(l.Pattern(), l, l, semiring.PlusPairF(), false); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled session context: got %v, want context.Canceled", eng.Name, err)
		}
	}
}
