package apps

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// TCResult reports a triangle counting run.
type TCResult struct {
	// Triangles is the number of triangles in the graph.
	Triangles int64
	// MaskedTime is the time spent inside the masked SpGEMM call only —
	// what the paper reports for this benchmark (§8.2).
	MaskedTime time.Duration
	// TotalTime includes relabeling and the reduction.
	TotalTime time.Duration
	// Flops is flops(L·L), the work metric for GFLOPS plots (Fig. 10).
	Flops int64
}

// GFLOPS returns the paper's performance metric for Fig. 10: 2·flops /
// masked-SpGEMM-time, in 1e9 ops/s.
func (r TCResult) GFLOPS() float64 {
	if r.MaskedTime <= 0 {
		return 0
	}
	return 2 * float64(r.Flops) / r.MaskedTime.Seconds() / 1e9
}

// TriangleCount counts triangles in the undirected graph g (symmetric
// adjacency, no self-loops) via sum(L .* (L·L)) where L is the strictly
// lower triangular part after relabeling vertices in non-increasing degree
// order (§8.2). The masked SpGEMM runs on the plus-pair semiring; eng
// supplies the implementation under test.
func TriangleCount(g *matrix.CSR[float64], eng Engine) (TCResult, error) {
	start := time.Now()
	perm := matrix.DegreeDescPerm(g)
	rel := matrix.Permute(g, perm)
	l := matrix.Tril(rel)
	res := TCResult{Flops: core.Flops(l, l, 0)}
	t0 := time.Now()
	c, err := eng.Mult(l.Pattern(), l, l, semiring.PlusPairF(), false)
	res.MaskedTime = time.Since(t0)
	if err != nil {
		return res, fmt.Errorf("apps: triangle count with %s: %w", eng.Name, err)
	}
	res.Triangles = int64(matrix.Sum(c))
	res.TotalTime = time.Since(start)
	return res, nil
}

// TriangleCountExact is a brute-force reference counter used by tests:
// for every edge (u, v) with u < v it intersects the adjacency lists.
// O(Σ_e (deg(u)+deg(v))).
func TriangleCountExact(g *matrix.CSR[float64]) int64 {
	var count int64
	for u := Index(0); u < g.NRows; u++ {
		uRow, _ := g.Row(u)
		for _, v := range uRow {
			if v <= u {
				continue
			}
			vRow, _ := g.Row(v)
			// Count common neighbors w with w > v to count each triangle once
			// per its largest vertex... simpler: count all common neighbors w
			// and divide total by 3 at the end (each triangle counted once
			// per edge).
			ui, vi := 0, 0
			for ui < len(uRow) && vi < len(vRow) {
				switch {
				case uRow[ui] == vRow[vi]:
					count++
					ui++
					vi++
				case uRow[ui] < vRow[vi]:
					ui++
				default:
					vi++
				}
			}
		}
	}
	return count / 3
}
