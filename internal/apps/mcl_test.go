package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// twoCliques builds two k-cliques joined by a single bridge edge — the
// canonical MCL test case: the algorithm must split it into two clusters.
func twoCliques(k Index) *matrix.CSR[float64] {
	n := 2 * k
	coo := &matrix.COO[float64]{NRows: n, NCols: n}
	add := func(u, v Index) {
		coo.Row = append(coo.Row, u, v)
		coo.Col = append(coo.Col, v, u)
		coo.Val = append(coo.Val, 1, 1)
	}
	for u := Index(0); u < k; u++ {
		for v := u + 1; v < k; v++ {
			add(u, v)
			add(u+k, v+k)
		}
	}
	add(0, k) // bridge
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

func mclEngine() Engine {
	return EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}, core.Options{Threads: 2})
}

func TestMCLTwoCliques(t *testing.T) {
	g := twoCliques(6)
	for _, masked := range []bool{false, true} {
		res, err := MCL(g, MCLOptions{MaskedExpansion: masked}, mclEngine())
		if err != nil {
			t.Fatal(err)
		}
		if res.Clusters != 2 {
			t.Fatalf("masked=%v: clusters = %d, want 2", masked, res.Clusters)
		}
		// All of clique 1 together, all of clique 2 together.
		for v := Index(1); v < 6; v++ {
			if res.Cluster[v] != res.Cluster[0] {
				t.Fatalf("masked=%v: vertex %d split from clique 1", masked, v)
			}
			if res.Cluster[v+6] != res.Cluster[6] {
				t.Fatalf("masked=%v: vertex %d split from clique 2", masked, v+6)
			}
		}
		if res.Cluster[0] == res.Cluster[6] {
			t.Fatalf("masked=%v: cliques merged", masked)
		}
		if res.Iterations < 2 {
			t.Fatalf("masked=%v: too few iterations: %d", masked, res.Iterations)
		}
	}
}

func TestMCLDisconnectedComponents(t *testing.T) {
	// Two disjoint triangles: exactly two clusters, no ambiguity.
	coo := &matrix.COO[float64]{NRows: 6, NCols: 6}
	add := func(u, v Index) {
		coo.Row = append(coo.Row, u, v)
		coo.Col = append(coo.Col, v, u)
		coo.Val = append(coo.Val, 1, 1)
	}
	add(0, 1)
	add(1, 2)
	add(0, 2)
	add(3, 4)
	add(4, 5)
	add(3, 5)
	g := matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
	res, err := MCL(g, MCLOptions{}, mclEngine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.Clusters)
	}
}

func TestMCLDefaultsAndErrors(t *testing.T) {
	rect := matrix.NewEmptyCSR[float64](3, 4)
	if _, err := MCL(rect, MCLOptions{}, mclEngine()); err == nil {
		t.Fatal("rectangular input must fail")
	}
	// Degenerate options are coerced to sane defaults.
	g := twoCliques(4)
	res, err := MCL(g, MCLOptions{Inflation: 0.5, PruneBelow: -1, MaxIter: -1}, mclEngine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters < 1 {
		t.Fatal("no clusters")
	}
	// Empty graph: every vertex is its own attractor-less singleton.
	empty := matrix.NewEmptyCSR[float64](4, 4)
	res, err = MCL(empty, MCLOptions{}, mclEngine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 4 {
		t.Fatalf("empty graph clusters = %d, want 4 singletons", res.Clusters)
	}
}
