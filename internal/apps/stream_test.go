package apps

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/grgen"
	"repro/internal/matrix"
)

// shadowGraph is the brute-force mirror of a streamed graph: a symmetric
// adjacency set the exact references run on after every prefix.
type shadowGraph struct {
	n   Index
	adj map[Index]map[Index]bool
}

func newShadowGraph(g *matrix.CSR[float64]) *shadowGraph {
	s := &shadowGraph{n: g.NRows, adj: make(map[Index]map[Index]bool)}
	for i := Index(0); i < g.NRows; i++ {
		cols, _ := g.Row(i)
		for _, j := range cols {
			if i != j {
				s.link(i, j)
			}
		}
	}
	return s
}

func (s *shadowGraph) link(u, v Index) {
	for _, p := range [2][2]Index{{u, v}, {v, u}} {
		if s.adj[p[0]] == nil {
			s.adj[p[0]] = make(map[Index]bool)
		}
		s.adj[p[0]][p[1]] = true
	}
}

func (s *shadowGraph) apply(edges []StreamEdge) {
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.Delete {
			delete(s.adj[e.U], e.V)
			delete(s.adj[e.V], e.U)
		} else {
			s.link(e.U, e.V)
		}
	}
}

func (s *shadowGraph) csr() *matrix.CSR[float64] {
	coo := &matrix.COO[float64]{NRows: s.n, NCols: s.n}
	for u, row := range s.adj {
		for v := range row {
			coo.Row = append(coo.Row, u)
			coo.Col = append(coo.Col, v)
			coo.Val = append(coo.Val, 1)
		}
	}
	return matrix.NewCSRFromCOO(coo, func(a, b float64) float64 { return 1 })
}

// randomEdges draws a mixed insert/delete batch; deletes target existing
// edges so they actually exercise removal.
func (s *shadowGraph) randomEdges(rng *rand.Rand, count int) []StreamEdge {
	out := make([]StreamEdge, 0, count)
	for k := 0; k < count; k++ {
		if rng.Intn(3) == 0 {
			if e, ok := s.someEdge(rng); ok {
				out = append(out, StreamEdge{U: e[0], V: e[1], Delete: true})
				continue
			}
		}
		out = append(out, StreamEdge{
			U: Index(rng.Intn(int(s.n))), V: Index(rng.Intn(int(s.n)))})
	}
	return out
}

func (s *shadowGraph) someEdge(rng *rand.Rand) ([2]Index, bool) {
	for tries := 0; tries < 50; tries++ {
		u := Index(rng.Intn(int(s.n)))
		for v := range s.adj[u] {
			return [2]Index{u, v}, true
		}
	}
	return [2]Index{}, false
}

// TestTriangleCountStreamMatchesExact drives a mixed insert/delete stream
// and checks the maintained count against the brute-force reference after
// every batch, across the planner-backed and a pinned engine, including a
// mid-stream Compact.
func TestTriangleCountStreamMatchesExact(t *testing.T) {
	ses := NewSession(core.Options{Threads: 2})
	engines := []Engine{
		ses.EngineAuto(),
		ses.EngineVariant(core.Variant{Alg: core.MSA, Phase: core.OnePhase}),
	}
	for _, eng := range engines {
		t.Run(eng.Name, func(t *testing.T) {
			base := grgen.ErdosRenyiSym(80, 6, 11)
			shadow := newShadowGraph(base)
			st, err := TriangleCountStream(base, eng)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := st.Count(), TriangleCountExact(shadow.csr()); got != want {
				t.Fatalf("initial count = %d, want %d", got, want)
			}
			rng := rand.New(rand.NewSource(42))
			const rounds = 8
			for r := 0; r < rounds; r++ {
				batch := shadow.randomEdges(rng, 6)
				shadow.apply(batch)
				got, err := st.ApplyEdges(batch)
				if err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				if got != st.Count() {
					t.Fatalf("round %d: ApplyEdges returned %d, Count says %d", r, got, st.Count())
				}
				if want := TriangleCountExact(shadow.csr()); got != want {
					t.Fatalf("round %d: count = %d, want %d", r, got, want)
				}
				if r == rounds/2 {
					st.Compact()
				}
			}
			if st.Stats().Batches != rounds {
				t.Fatalf("stats counted %d batches, want %d", st.Stats().Batches, rounds)
			}
		})
	}
}

// TestTriangleCountStreamKnownTransitions pins down the count across
// hand-checked transitions: closing a triangle, then reopening it.
func TestTriangleCountStreamKnownTransitions(t *testing.T) {
	eng := NewSession(core.Options{Threads: 2}).EngineAuto()
	st, err := TriangleCountStream(pathGraph(6), eng)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count() != 0 {
		t.Fatalf("path graph counted %d triangles", st.Count())
	}
	// Close 0-1-2 into a triangle.
	if got, err := st.ApplyEdges([]StreamEdge{{U: 0, V: 2}}); err != nil || got != 1 {
		t.Fatalf("after closing a triangle: count %d err %v, want 1", got, err)
	}
	// Self-loops and duplicate inserts change nothing.
	if got, err := st.ApplyEdges([]StreamEdge{{U: 3, V: 3}, {U: 0, V: 2}}); err != nil || got != 1 {
		t.Fatalf("after no-op batch: count %d err %v, want 1", got, err)
	}
	// Deleting the spanning edge reopens it.
	if got, err := st.ApplyEdges([]StreamEdge{{U: 1, V: 2, Delete: true}}); err != nil || got != 0 {
		t.Fatalf("after deleting an edge: count %d err %v, want 0", got, err)
	}
	// Out-of-range batches reject whole without corrupting the count.
	if _, err := st.ApplyEdges([]StreamEdge{{U: 0, V: 99}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if st.Count() != 0 {
		t.Fatalf("rejected batch changed the count to %d", st.Count())
	}
}

// TestKTrussStreamMatchesExact drives a mixed stream and checks the
// maintained truss against the brute-force reference after every batch.
func TestKTrussStreamMatchesExact(t *testing.T) {
	eq := func(a, b float64) bool { return a == b }
	ses := NewSession(core.Options{Threads: 2})
	engines := []Engine{
		ses.EngineAuto(),
		ses.EngineVariant(core.Variant{Alg: core.Hash, Phase: core.TwoPhase}),
	}
	for _, eng := range engines {
		for _, k := range []int{3, 4} {
			t.Run(fmt.Sprintf("%s/k%d", eng.Name, k), func(t *testing.T) {
				base := grgen.ErdosRenyiSym(48, 8, 7)
				shadow := newShadowGraph(base)
				st, err := NewKTrussStream(base, k, eng)
				if err != nil {
					t.Fatal(err)
				}
				if !matrix.Equal(st.Truss(), KTrussExact(shadow.csr(), k), eq) {
					t.Fatal("initial truss diverges from exact reference")
				}
				rng := rand.New(rand.NewSource(int64(13 * k)))
				for r := 0; r < 6; r++ {
					batch := shadow.randomEdges(rng, 5)
					shadow.apply(batch)
					got, err := st.ApplyEdges(batch)
					if err != nil {
						t.Fatalf("round %d: %v", r, err)
					}
					if want := KTrussExact(shadow.csr(), k); !matrix.Equal(got, want, eq) {
						t.Fatalf("round %d: truss (%d edges) diverges from exact reference (%d edges)",
							r, got.NNZ(), want.NNZ())
					}
					if r == 3 {
						st.Compact()
					}
				}
			})
		}
	}
}

// TestKTrussStreamDeletionWarmPath asserts the monotonicity optimization:
// deletion-only batches must peel the maintained truss product forward
// (no full-graph peel restart), and still match the exact reference.
func TestKTrussStreamDeletionWarmPath(t *testing.T) {
	eq := func(a, b float64) bool { return a == b }
	eng := NewSession(core.Options{Threads: 2}).EngineAuto()
	base := grgen.ErdosRenyiSym(40, 8, 19)
	shadow := newShadowGraph(base)
	const k = 4
	st, err := NewKTrussStream(base, k, eng)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().FullPeels != 0 {
		t.Fatalf("constructor counted %d full peels, want 0", st.Stats().FullPeels)
	}
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 4; r++ {
		var batch []StreamEdge
		for len(batch) < 3 {
			if e, ok := shadow.someEdge(rng); ok {
				batch = append(batch, StreamEdge{U: e[0], V: e[1], Delete: true})
			} else {
				t.Skip("graph ran out of edges")
			}
		}
		shadow.apply(batch)
		got, err := st.ApplyEdges(batch)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if want := KTrussExact(shadow.csr(), k); !matrix.Equal(got, want, eq) {
			t.Fatalf("round %d: deletion-only truss diverges from exact reference", r)
		}
	}
	if n := st.Stats().FullPeels; n != 0 {
		t.Fatalf("deletion-only stream triggered %d full peels, want 0", n)
	}
	// An insertion batch takes the restart path — and still matches.
	ins := []StreamEdge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}}
	shadow.apply(ins)
	got, err := st.ApplyEdges(ins)
	if err != nil {
		t.Fatal(err)
	}
	if want := KTrussExact(shadow.csr(), k); !matrix.Equal(got, want, eq) {
		t.Fatal("post-insertion truss diverges from exact reference")
	}
	if n := st.Stats().FullPeels; n != 1 {
		t.Fatalf("insertion batch counted %d full peels, want 1", n)
	}
}
