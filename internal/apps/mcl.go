package apps

import (
	"fmt"
	"math"
	"time"

	"repro/internal/baseline"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Markov clustering (MCL) — one of the SpGEMM-backbone applications the
// paper's background cites ([35] HipMCL, [36] van Dongen): communities are
// found by alternating *expansion* (squaring the column-stochastic matrix,
// an SpGEMM) and *inflation* (element-wise powering + renormalization),
// with pruning of small entries to keep the iterate sparse. Expansion is
// where masked SpGEMM applies: after the process begins to converge, the
// pattern of the current iterate is a good mask for the next square, so
// the expansion can run masked instead of full.

// MCLOptions configures a run.
type MCLOptions struct {
	// Inflation is the inflation exponent r (> 1; van Dongen's default 2).
	Inflation float64
	// PruneBelow drops entries smaller than this after each step.
	PruneBelow float64
	// MaxIter caps the iteration count.
	MaxIter int
	// MaskedExpansion uses the current pattern as a mask for the expansion
	// SpGEMM (via the supplied engine) instead of a full SpGEMM. This is
	// the masked-SpGEMM acceleration; exact MCL uses the full expansion,
	// so masked mode is an approximation that converges to the same
	// clustering when the pattern has stabilized.
	MaskedExpansion bool
	// Threads for the SpGEMM calls.
	Threads int
}

// MCLResult reports a clustering.
type MCLResult struct {
	// Cluster[v] is the cluster id of vertex v (attractor-based labeling).
	Cluster []int
	// Clusters is the number of distinct clusters.
	Clusters int
	// Iterations executed.
	Iterations int
	// ExpansionTime is the total time in SpGEMM (masked or full).
	ExpansionTime time.Duration
	// TotalTime is end-to-end.
	TotalTime time.Duration
}

// MCL runs Markov clustering on the undirected graph g (symmetric
// adjacency; self-loops are added internally, as the algorithm requires).
// eng supplies the masked SpGEMM when opt.MaskedExpansion is set.
func MCL(g *matrix.CSR[float64], opt MCLOptions, eng Engine) (MCLResult, error) {
	start := time.Now()
	if g.NRows != g.NCols {
		return MCLResult{}, fmt.Errorf("apps: MCL needs a square matrix, got %dx%d", g.NRows, g.NCols)
	}
	if opt.Inflation <= 1 {
		opt.Inflation = 2
	}
	if opt.PruneBelow <= 0 {
		opt.PruneBelow = 1e-4
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	n := g.NRows
	// Add self-loops and column-normalize.
	diag := &matrix.COO[float64]{NRows: n, NCols: n}
	for i := Index(0); i < n; i++ {
		diag.Row = append(diag.Row, i)
		diag.Col = append(diag.Col, i)
		diag.Val = append(diag.Val, 1)
	}
	m := matrix.EWiseAdd(g, matrix.NewCSRFromCOO(diag, nil), func(a, b float64) float64 { return a + b })
	m = columnNormalize(m)

	sr := semiring.Arithmetic()
	res := MCLResult{}
	for res.Iterations = 1; res.Iterations <= opt.MaxIter; res.Iterations++ {
		// Expansion: M ← M·M (optionally masked by the current pattern).
		t0 := time.Now()
		var sq *matrix.CSR[float64]
		var err error
		if opt.MaskedExpansion {
			sq, err = eng.Mult(m.Pattern(), m, m, sr, false)
		} else {
			sq = baseline.SpGEMM(m, m, sr, baseline.Options{Threads: opt.Threads})
		}
		res.ExpansionTime += time.Since(t0)
		if err != nil {
			return res, fmt.Errorf("apps: MCL expansion with %s: %w", eng.Name, err)
		}
		// Inflation: element-wise power then column normalization, then
		// prune small entries.
		infl := matrix.MapValues(sq, func(v float64) float64 { return math.Pow(v, opt.Inflation) })
		infl = columnNormalize(infl)
		infl = matrix.FilterEntries(infl, func(_, _ Index, v float64) bool { return v >= opt.PruneBelow })
		infl = columnNormalize(infl) // re-normalize after pruning
		if converged(m, infl) {
			m = infl
			break
		}
		m = infl
	}
	res.Cluster, res.Clusters = interpretClusters(m)
	res.TotalTime = time.Since(start)
	return res, nil
}

// columnNormalize scales each column to sum 1 (columns summing to zero are
// left untouched).
func columnNormalize(a *matrix.CSR[float64]) *matrix.CSR[float64] {
	sums := make([]float64, a.NCols)
	for k, j := range a.Col {
		sums[j] += a.Val[k]
	}
	out := a.Clone()
	for k, j := range out.Col {
		if sums[j] > 0 {
			out.Val[k] /= sums[j]
		}
	}
	return out
}

// converged reports whether two consecutive iterates agree within 1e-6 on
// an identical pattern.
func converged(a, b *matrix.CSR[float64]) bool {
	if !matrix.EqualPatterns(a.Pattern(), b.Pattern()) {
		return false
	}
	for k := range a.Val {
		if math.Abs(a.Val[k]-b.Val[k]) > 1e-6 {
			return false
		}
	}
	return true
}

// interpretClusters labels each vertex by its attractor: vertex v belongs
// to the cluster of the row index with the largest value in column v
// (rows with nonzeros are attractors in converged MCL iterates).
func interpretClusters(m *matrix.CSR[float64]) ([]int, int) {
	n := int(m.NRows)
	owner := make([]Index, n)
	best := make([]float64, n)
	for i := range owner {
		owner[i] = Index(i)
		best[i] = -1
	}
	for i := Index(0); i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if vals[k] > best[j] {
				best[j] = vals[k]
				owner[j] = i
			}
		}
	}
	// Canonicalize attractor ids to dense cluster numbers.
	idOf := map[Index]int{}
	cluster := make([]int, n)
	for v := 0; v < n; v++ {
		a := owner[v]
		id, ok := idOf[a]
		if !ok {
			id = len(idOf)
			idOf[a] = id
		}
		cluster[v] = id
	}
	return cluster, len(idOf)
}
