// Package asciiplot renders simple terminal line charts, so the benchmark
// harness can show the *shape* of the paper's figures (performance-profile
// curves, GFLOPS-vs-scale series) directly in a terminal, alongside the
// TSV data used for exact comparison.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Options configures a chart.
type Options struct {
	Width, Height int    // plot area in characters (default 60×16)
	Title         string // optional banner
	XLabel        string
	YLabel        string
}

// markers distinguish overlapping series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~', '^', '&', '$', '='}

// Render draws the series into a fixed-size character grid with axes and a
// legend. Series with no finite points are listed in the legend but not
// drawn.
func Render(series []Series, opt Options) string {
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no finite data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		// Plot each segment with linear interpolation so curves read as
		// lines, not scatter.
		for i := 1; i < len(s.X); i++ {
			if !finite(s.X[i-1]) || !finite(s.Y[i-1]) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			steps := w
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				x := s.X[i-1] + f*(s.X[i]-s.X[i-1])
				y := s.Y[i-1] + f*(s.Y[i]-s.Y[i-1])
				px := int((x - minX) / (maxX - minX) * float64(w-1))
				py := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
				if px >= 0 && px < w && py >= 0 && py < h {
					grid[py][px] = mark
				}
			}
		}
		// Single points still get a marker.
		if len(s.X) == 1 && finite(s.X[0]) && finite(s.Y[0]) {
			px := int((s.X[0] - minX) / (maxX - minX) * float64(w-1))
			py := h - 1 - int((s.Y[0]-minY)/(maxY-minY)*float64(h-1))
			grid[py][px] = mark
		}
	}
	// Axes and labels.
	yLo, yHi := fmtTick(minY), fmtTick(maxY)
	pad := len(yLo)
	if len(yHi) > pad {
		pad = len(yHi)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = leftPad(yHi, pad)
		}
		if r == h-1 {
			label = leftPad(yLo, pad)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	xLo, xHi := fmtTick(minX), fmtTick(maxX)
	gap := w - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xLo, strings.Repeat(" ", gap), xHi)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), opt.XLabel, opt.YLabel)
	}
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func fmtTick(x float64) string {
	switch {
	case x == math.Trunc(x) && math.Abs(x) < 1e6:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 0.01:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.2g", x)
	}
}

func leftPad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}
