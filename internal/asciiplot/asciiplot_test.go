package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}
	out := Render(s, Options{Width: 40, Height: 10, Title: "demo", XLabel: "x", YLabel: "y"})
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Fatal("axis labels missing")
	}
	// Both markers must appear in the plot area.
	if strings.Count(out, "*") < 2 || strings.Count(out, "o") < 2 {
		t.Fatal("curves not drawn")
	}
	// The rising curve's marker should appear in the top-right region:
	// last plot row before the axis contains the "down" end or "up" start.
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render([]Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}, Options{})
	if !strings.Contains(out, "no finite data") {
		t.Fatal("expected empty-data message")
	}
	out = Render(nil, Options{})
	if !strings.Contains(out, "no finite data") {
		t.Fatal("nil series")
	}
}

func TestRenderSinglePointAndFlat(t *testing.T) {
	out := Render([]Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatal("single point must be drawn")
	}
	// Flat line (degenerate Y range) must not panic or divide by zero.
	out = Render([]Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{3, 3}}}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "flat") {
		t.Fatal("flat series legend")
	}
}

func TestRenderSkipsNaNSegments(t *testing.T) {
	s := []Series{{
		Name: "gap",
		X:    []float64{0, 1, 2, 3},
		Y:    []float64{1, math.NaN(), math.NaN(), 2},
	}}
	out := Render(s, Options{Width: 30, Height: 8})
	if !strings.Contains(out, "gap") {
		t.Fatal("legend")
	}
}

func TestManySeriesMarkerCycle(t *testing.T) {
	var s []Series
	for i := 0; i < 14; i++ { // more than len(markers)
		s = append(s, Series{Name: "s", X: []float64{0, 1}, Y: []float64{float64(i), float64(i)}})
	}
	out := Render(s, Options{Width: 20, Height: 20})
	if out == "" {
		t.Fatal("render failed")
	}
}

func TestTickFormatting(t *testing.T) {
	if fmtTick(3) != "3" {
		t.Fatal("integer tick")
	}
	if fmtTick(0.5) != "0.50" {
		t.Fatal("decimal tick")
	}
	if fmtTick(0.0001) != "0.0001" {
		t.Fatalf("small tick: %s", fmtTick(0.0001))
	}
	if leftPad("x", 3) != "  x" || leftPad("abcd", 2) != "abcd" {
		t.Fatal("pad")
	}
}
